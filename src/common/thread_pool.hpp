// Minimal work-stealing-free thread pool used by the GPU simulator to run
// thread blocks in parallel across host cores (each worker plays the role of
// a streaming multiprocessor executing blocks from the grid).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace fcm {

/// Fixed-size thread pool. Construction spawns `n` workers; destruction joins
/// them. parallel_for partitions [0, n) into contiguous chunks, one per
/// worker, and blocks until all complete — the only pattern the simulator
/// needs (a grid of independent thread blocks).
class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for every i in [0, count). Blocks until done. Exceptions from
  /// workers are rethrown on the calling thread. After the first throw the
  /// remaining indices are abandoned (fail fast); when several indices would
  /// throw, *which* exception surfaces depends on scheduling — only the
  /// fact of failure is deterministic, not the message.
  ///
  /// Workers claim contiguous [i, i+grain) chunks off one shared atomic
  /// cursor, so the synchronisation cost is one fetch_add per `grain`
  /// indices instead of one per index. `grain` <= 0 picks an automatic
  /// size: count / (8 * workers), clamped to >= 1 — small enough to keep
  /// load balanced when per-index cost varies, large enough to amortise the
  /// atomic for the planner's big candidate sweeps. Which indices land on
  /// which worker never affects results for the sharded-slot-write pattern
  /// all callers use, so outputs stay bit-identical to a serial loop for
  /// any grain and worker count.
  ///
  /// Re-entrant: a parallel_for issued from inside a worker runs inline on
  /// that worker. Nested parallel sections (planner layer loop → tile search
  /// → simulated kernel launch) would otherwise deadlock, with every worker
  /// blocked waiting for queued sub-tasks no one is free to run.
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t)>& fn,
                    std::int64_t grain = 0) EXCLUDES(mu_);

  /// Process-wide pool shared by the planner, runtime and simulator.
  static ThreadPool& global();

  /// Redirect global() to `pool` (nullptr restores the default pool) and
  /// return the previous override. Lets tests and CLIs pin the worker count —
  /// e.g. force a 1-worker pool to compare against a parallel run. Must not
  /// race with concurrent global() users.
  static ThreadPool* set_global_override(ThreadPool* pool);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop() EXCLUDES(mu_);

  /// Registry handles (process-wide totals across every pool), bound once at
  /// construction: tasks executed, wall time per task, and the queue depth
  /// sampled at every push/pop under mu_.
  struct Metrics {
    obs::Counter* tasks;
    obs::Histogram* task_time;
    obs::Gauge* depth;
  };
  Metrics m_;

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<Task> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

/// RAII pool override: global() returns `pool` for this object's lifetime,
/// then the previous pool again — exception-safe, unlike calling
/// set_global_override by hand around code that may throw.
class ScopedPoolOverride {
 public:
  explicit ScopedPoolOverride(ThreadPool& pool)
      : prev_(ThreadPool::set_global_override(&pool)) {}
  ~ScopedPoolOverride() { ThreadPool::set_global_override(prev_); }

  ScopedPoolOverride(const ScopedPoolOverride&) = delete;
  ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

 private:
  ThreadPool* prev_;
};

}  // namespace fcm
