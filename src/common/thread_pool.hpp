// Minimal work-stealing-free thread pool used by the GPU simulator to run
// thread blocks in parallel across host cores (each worker plays the role of
// a streaming multiprocessor executing blocks from the grid).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fcm {

/// Fixed-size thread pool. Construction spawns `n` workers; destruction joins
/// them. parallel_for partitions [0, n) into contiguous chunks, one per
/// worker, and blocks until all complete — the only pattern the simulator
/// needs (a grid of independent thread blocks).
class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for every i in [0, count). Blocks until done. Exceptions from
  /// workers are rethrown on the calling thread (first one wins).
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t)>& fn);

  /// Process-wide pool shared by all simulator launches.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fcm
