// Deterministic random initialisation used by tests, benches and examples.
//
// All fills take an explicit seed so every experiment in EXPERIMENTS.md is
// exactly reproducible run-to-run.
#pragma once

#include <cstdint>

#include "common/tensor.hpp"

namespace fcm {

/// Fill a float tensor with uniform values in [lo, hi).
void fill_uniform(TensorF& t, std::uint64_t seed, float lo = -1.0f,
                  float hi = 1.0f);
void fill_uniform(WeightsF& t, std::uint64_t seed, float lo = -1.0f,
                  float hi = 1.0f);

/// Fill an int8 tensor with uniform values in [lo, hi].
void fill_uniform_i8(TensorI8& t, std::uint64_t seed, int lo = -8, int hi = 8);
void fill_uniform_i8(WeightsI8& t, std::uint64_t seed, int lo = -8, int hi = 8);

}  // namespace fcm
