// Clang thread-safety (capability) annotations and the annotated mutex shim.
//
// Every mutex-protected member in the concurrent subsystems (ThreadPool,
// PlanCache, Scheduler, InferenceEngine, ServingCluster, ManualClock) is
// declared GUARDED_BY its mutex and every locking function carries the
// matching ACQUIRE/RELEASE/REQUIRES/EXCLUDES attribute, so a Clang build with
// -Wthread-safety -Werror machine-checks the locking discipline the comments
// used to merely describe. Under compilers without the capability attributes
// (GCC included) every macro expands to nothing and the shim classes below
// degrade to thin wrappers over the std primitives.
//
// ---------------------------------------------------------------------------
// REPO-WIDE LOCK-ORDERING RULE
// ---------------------------------------------------------------------------
// Deadlock freedom rests on one rule: subsystem mutexes are LEAVES. A thread
// never holds two subsystem mutexes at once; code paths that consult several
// subsystems (a worker popping the Scheduler, then building a runner under
// InferenceEngine::mu_, then planning under PlanCache::mu_) take and release
// them strictly in sequence. Concretely:
//
//  * ServingCluster::route_mu_ — serialises the routing pick + routed
//    counters only. Shard gauges (Scheduler::load(), PlanCache::contains())
//    are gathered BEFORE it is taken; no shard mutex is ever acquired while
//    route_mu_ is held, so route_mu_ never nests with Scheduler::mu_.
//  * Scheduler::mu_, PlanCache::mu_, InferenceEngine::mu_,
//    InferenceEngine::workers_mu_, ThreadPool::mu_ — leaf mutexes; none of
//    them is acquired while another FCM mutex is held.
//  * PlanCache::InFlight::m — taken strictly AFTER PlanCache::mu_ has been
//    RELEASED (lookup drops the cache lock, then waits on the flight), never
//    nested inside it.
//  * ManualClock::wmu_ → waiter mutex (Scheduler::mu_) — the ONE sanctioned
//    subsystem nesting: advancing virtual time locks each registered
//    waiter's mutex to fence the classic missed wakeup. The reverse edge
//    cannot form because Clock methods called under Scheduler::mu_ (now_s,
//    wait_until) never touch wmu_, and register_/unregister_waiter are
//    documented to be called without the waiter's mutex held.
//  * any mutex → obs sink mutexes (obs::Tracer::mu_, obs::Family::mu_,
//    obs::MetricsRegistry::mu_) — instrumentation sinks are TERMINAL
//    leaves: record()/with()/family getters touch only their own state and
//    never acquire another FCM mutex while held, so no cycle through them
//    can form. Export paths (prometheus_text/json_text/chrome_trace_json)
//    snapshot pointers under these mutexes, then RELEASE them and format
//    lock-free — a scrape never blocks a writer beyond the snapshot copy.
//
// New code should keep new mutexes leaves; any new nesting must be added to
// this list with the cycle argument spelled out.
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute plumbing: real attributes under Clang, no-ops elsewhere.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FCM_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef FCM_THREAD_ANNOTATION__
#define FCM_THREAD_ANNOTATION__(x)
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define CAPABILITY(x) FCM_THREAD_ANNOTATION__(capability(x))
/// Class attribute: RAII objects that acquire on construction, release on
/// destruction (and may relock/unlock in between).
#define SCOPED_CAPABILITY FCM_THREAD_ANNOTATION__(scoped_lockable)
/// Data member attribute: reads and writes require holding the capability.
#define GUARDED_BY(x) FCM_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer member attribute: dereferencing requires holding the capability.
#define PT_GUARDED_BY(x) FCM_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function attribute: the caller must already hold the capability.
#define REQUIRES(...) FCM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function attribute: acquires the capability (not held on entry).
#define ACQUIRE(...) FCM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function attribute: releases the capability (held on entry).
#define RELEASE(...) FCM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function attribute: acquires the capability when returning `b`.
#define TRY_ACQUIRE(b, ...) \
  FCM_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))
/// Function attribute: the caller must NOT hold the capability (deadlock
/// guard on public entry points that lock internally).
#define EXCLUDES(...) FCM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Function attribute: tells the analysis the capability IS held here —
/// the escape hatch for lambdas (condition-variable predicates) whose
/// call-with-lock-held context the analysis cannot see.
#define ASSERT_CAPABILITY(x) FCM_THREAD_ANNOTATION__(assert_capability(x))
/// Function attribute: returns a reference to the given capability.
#define RETURN_CAPABILITY(x) FCM_THREAD_ANNOTATION__(lock_returned(x))
/// Function attribute: opt this function out of the analysis entirely.
#define NO_THREAD_SAFETY_ANALYSIS \
  FCM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace fcm {

/// std::mutex behind the capability attribute: the type every GUARDED_BY in
/// the serving stack names. Zero overhead — the annotations are compile-time
/// only and the class is a transparent wrapper.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Assert (to the analysis only; no runtime check) that this thread holds
  /// the mutex. Condition-variable predicate lambdas open with this: they
  /// run with the lock held, but the analysis cannot see through the
  /// std::condition_variable::wait call boundary.
  void assert_held() const ASSERT_CAPABILITY(this) {}

  /// The wrapped mutex, for interop with std waiting primitives.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex — std::unique_lock semantics (early unlock and
/// relock supported) under the scoped-capability attribute.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), lk_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lk_.unlock(); }
  void lock() ACQUIRE() { lk_.lock(); }

  /// The underlying unique_lock, for std::condition_variable-style waits
  /// (CondVar below passes through here).
  std::unique_lock<std::mutex>& native() { return lk_; }
  /// The Mutex this lock covers — predicates use it to assert_held().
  Mutex& mutex() RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over MutexLock. Waiting is not expressible to the
/// capability analysis (the lock is released and reacquired inside), so the
/// contract stays conventional: call with the MutexLock held, and open every
/// predicate lambda with mutex().assert_held().
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lk) { cv_.wait(lk.native()); }

  template <typename Pred>
  void wait(MutexLock& lk, Pred pred) {
    cv_.wait(lk.native(), std::move(pred));
  }

  template <typename TimePoint>
  std::cv_status wait_until(MutexLock& lk, const TimePoint& tp) {
    return cv_.wait_until(lk.native(), tp);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fcm
