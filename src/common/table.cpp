#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace fcm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  FCM_CHECK(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << std::string(widths[i] - row[i].size(), ' ');
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_f(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_pct(double ratio) {
  if (ratio <= 0.0) return "-";
  std::ostringstream os;
  os << static_cast<int>(std::lround(ratio * 100.0)) << "%";
  return os.str();
}

}  // namespace fcm
