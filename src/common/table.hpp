// Plain-text table rendering used by the benchmark harnesses to print rows
// and series in the same layout as the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace fcm {

/// Column-aligned text table. Usage:
///   Table t({"case", "speedup"});
///   t.add_row({"F1", "1.32"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with single-space-padded columns and a dashed header rule.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed-precision double (e.g. fmt_f(1.234567, 2) == "1.23").
std::string fmt_f(double v, int precision = 2);

/// Format helper: percentage with sign convention of the paper's Table II
/// ("7%", "-" when zero).
std::string fmt_pct(double ratio);

}  // namespace fcm
