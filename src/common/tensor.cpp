#include "common/tensor.hpp"

#include <cstdlib>

namespace fcm {

float max_abs_diff(const TensorF& a, const TensorF& b) {
  FCM_CHECK(a.shape() == b.shape(), "shape mismatch in max_abs_diff");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::int64_t max_abs_diff(const TensorI32& a, const TensorI32& b) {
  FCM_CHECK(a.shape() == b.shape(), "shape mismatch in max_abs_diff");
  std::int64_t m = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max<std::int64_t>(m, std::llabs(static_cast<long long>(a[i]) - b[i]));
  }
  return m;
}

bool allclose(const TensorF& a, const TensorF& b, float tol) {
  if (!(a.shape() == b.shape())) return false;
  return max_abs_diff(a, b) <= tol;
}

}  // namespace fcm
