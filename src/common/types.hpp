// Fundamental scalar types and small arithmetic helpers shared by every
// FCM module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fcm {

/// Element type of a tensor. The paper evaluates FP32 (training precision)
/// and INT8 (common inference precision, executed with dp4a-style 4-way dot
/// products accumulating into 32-bit integers).
enum class DType : std::uint8_t {
  kF32,
  kI8,
};

/// Size in bytes of one element of `dt`.
constexpr std::size_t dtype_size(DType dt) noexcept {
  return dt == DType::kF32 ? 4u : 1u;
}

/// Human-readable name ("fp32" / "int8").
inline std::string dtype_name(DType dt) {
  return dt == DType::kF32 ? "fp32" : "int8";
}

/// Warp size of every CUDA-capable GPU the paper targets. FusePlanner
/// restricts explored tile sizes to multiples of this (paper §IV-B).
inline constexpr int kWarpSize = 32;

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Round `a` up to the nearest multiple of `m` (m > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t m) noexcept {
  return ceil_div(a, m) * m;
}

}  // namespace fcm
