#include "common/random.hpp"

#include <random>

namespace fcm {

namespace {
// splitmix64: cheap, high-quality stream for deterministic fills.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  // Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

template <typename Container>
void fill_f(Container& t, std::uint64_t seed, float lo, float hi) {
  SplitMix64 rng{seed};
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = lo + static_cast<float>(rng.unit()) * (hi - lo);
  }
}

template <typename Container>
void fill_i8(Container& t, std::uint64_t seed, int lo, int hi) {
  SplitMix64 rng{seed};
  const int span = hi - lo + 1;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<std::int8_t>(lo + static_cast<int>(rng.next() % span));
  }
}
}  // namespace

void fill_uniform(TensorF& t, std::uint64_t seed, float lo, float hi) {
  fill_f(t, seed, lo, hi);
}
void fill_uniform(WeightsF& t, std::uint64_t seed, float lo, float hi) {
  fill_f(t, seed, lo, hi);
}
void fill_uniform_i8(TensorI8& t, std::uint64_t seed, int lo, int hi) {
  fill_i8(t, seed, lo, hi);
}
void fill_uniform_i8(WeightsI8& t, std::uint64_t seed, int lo, int hi) {
  fill_i8(t, seed, lo, hi);
}

}  // namespace fcm
