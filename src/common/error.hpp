// Error handling primitives for the FCM library.
//
// All library-level invariant violations throw fcm::Error (derived from
// std::runtime_error) so callers can recover; benches and examples simply let
// them propagate. FCM_CHECK is used for argument validation on public entry
// points, FCM_ASSERT for internal invariants that indicate a library bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fcm {

/// Exception type thrown by all FCM components on invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "FCM check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fcm

/// Validate a user-facing precondition; throws fcm::Error when violated.
#define FCM_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::fcm::detail::throw_error(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (0)

/// Internal invariant; identical behaviour to FCM_CHECK but signals a bug.
#define FCM_ASSERT(cond, msg) FCM_CHECK(cond, std::string("internal: ") + (msg))
