// Auto-tuner in the style of TVM's hardware-in-the-loop tuning (paper §V-C:
// "we ran auto-tuning for 20 iterations with the hardware in the loop").
//
// Candidates are random tilings of the direct LBL kernel; each trial is
// "measured" on the simulated hardware via the roofline model, and the
// fastest is kept. Unlike FusePlanner this optimises *time* (as TVM does),
// not global memory accesses.
#pragma once

#include <optional>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "kernels/tiling.hpp"
#include "layers/layer_spec.hpp"

namespace fcm::baselines {

struct TuneResult {
  ConvTiling tiling;
  gpusim::KernelStats stats;
  double time_s = 0.0;
};

/// Tune the direct conv kernel for `spec` with `trials` random candidates.
/// Returns nullopt when no candidate fits the device (tiny degenerate
/// layers); deterministic for a fixed seed.
std::optional<TuneResult> autotune_direct(const gpusim::DeviceSpec& dev,
                                          const LayerSpec& spec, DType dt,
                                          int trials, std::uint64_t seed);

}  // namespace fcm::baselines
