#include "baselines/im2col.hpp"

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/launch.hpp"

namespace fcm::baselines {

Im2colDims im2col_dims(const LayerSpec& spec) {
  Im2colDims d;
  d.n = static_cast<std::int64_t>(spec.out_h()) * spec.out_w();
  if (spec.kind == ConvKind::kDepthwise) {
    d.k = static_cast<std::int64_t>(spec.kh) * spec.kw;
    d.groups = spec.in_c;
  } else {
    d.k = static_cast<std::int64_t>(spec.in_c) * spec.kh * spec.kw;
    d.groups = 1;
  }
  return d;
}

float im2col_at(const LayerSpec& spec, const TensorF& ifm, int g,
                std::int64_t r, std::int64_t n) {
  const int W = spec.out_w();
  const int oh = static_cast<int>(n / W);
  const int ow = static_cast<int>(n % W);
  int c, kh, kw;
  if (spec.kind == ConvKind::kDepthwise) {
    c = g;
    kh = static_cast<int>(r / spec.kw);
    kw = static_cast<int>(r % spec.kw);
  } else {
    c = static_cast<int>(r / (spec.kh * spec.kw));
    const int rem = static_cast<int>(r % (spec.kh * spec.kw));
    kh = rem / spec.kw;
    kw = rem % spec.kw;
  }
  const int ih = oh * spec.stride - spec.pad + kh;
  const int iw = ow * spec.stride - spec.pad + kw;
  if (ih < 0 || ih >= spec.in_h || iw < 0 || iw >= spec.in_w) return 0.0f;
  return ifm.at(c, ih, iw);
}

gpusim::KernelStats run_im2col_f32(const gpusim::DeviceSpec& dev,
                                   const LayerSpec& spec, const TensorF& ifm,
                                   int g, std::vector<float>& out) {
  const Im2colDims d = im2col_dims(spec);
  FCM_CHECK(g >= 0 && g < d.groups, "im2col: bad group");
  out.assign(static_cast<std::size_t>(d.k * d.n), 0.0f);

  // One block per column strip of 256 output positions.
  gpusim::LaunchConfig cfg;
  cfg.grid_blocks = ceil_div(d.n, 256);
  cfg.threads_per_block = 256;
  cfg.shared_bytes = 0;

  auto body = [&](gpusim::BlockContext& ctx) {
    const std::int64_t n0 = ctx.block_id() * 256;
    const std::int64_t n1 = std::min<std::int64_t>(n0 + 256, d.n);
    // Padding positions cost no global read: charge loads for in-bounds taps
    // only, while every matrix element (padding included) is stored.
    std::int64_t valid = 0;
    for (std::int64_t r = 0; r < d.k; ++r) {
      for (std::int64_t n = n0; n < n1; ++n) {
        const float v = im2col_at(spec, ifm, g, r, n);
        out[static_cast<std::size_t>(r * d.n + n)] = v;
        const int W = spec.out_w();
        const int oh = static_cast<int>(n / W);
        const int ow = static_cast<int>(n % W);
        int kh, kw;
        if (spec.kind == ConvKind::kDepthwise) {
          kh = static_cast<int>(r / spec.kw);
          kw = static_cast<int>(r % spec.kw);
        } else {
          const int rem = static_cast<int>(r % (spec.kh * spec.kw));
          kh = rem / spec.kw;
          kw = rem % spec.kw;
        }
        const int ih = oh * spec.stride - spec.pad + kh;
        const int iw = ow * spec.stride - spec.pad + kw;
        if (ih >= 0 && ih < spec.in_h && iw >= 0 && iw < spec.in_w) ++valid;
      }
    }
    ctx.load_ifm(valid * 4);
    ctx.global_store((n1 - n0) * d.k * 4);
  };

  return launch_kernel(dev, "im2col/" + spec.name, cfg, body);
}

gpusim::KernelStats im2col_stats(const LayerSpec& spec, DType dt) {
  const Im2colDims d = im2col_dims(spec);
  const std::int64_t esz = static_cast<std::int64_t>(dtype_size(dt));
  // Valid (non-padding) taps per output position, summed separably.
  std::int64_t taps_h = 0, taps_w = 0;
  for (int o = 0; o < spec.out_h(); ++o) {
    for (int t = 0; t < spec.kh; ++t) {
      const int i = o * spec.stride - spec.pad + t;
      if (i >= 0 && i < spec.in_h) ++taps_h;
    }
  }
  for (int o = 0; o < spec.out_w(); ++o) {
    for (int t = 0; t < spec.kw; ++t) {
      const int i = o * spec.stride - spec.pad + t;
      if (i >= 0 && i < spec.in_w) ++taps_w;
    }
  }
  const std::int64_t channels =
      spec.kind == ConvKind::kDepthwise ? spec.in_c : spec.in_c;
  gpusim::KernelStats st;
  st.global_load_bytes = channels * taps_h * taps_w * esz;
  st.ifm_load_bytes = st.global_load_bytes;
  st.global_store_bytes = d.groups * d.k * d.n * esz;
  st.num_blocks = d.groups * ceil_div(d.n, 256);
  st.threads_per_block = 256;
  st.launches = 1;
  return st;
}

}  // namespace fcm::baselines
