#include "baselines/gemm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/launch.hpp"

namespace fcm::baselines {

namespace {
constexpr int kThreads = 256;
}

gpusim::KernelStats run_gemm_f32(const gpusim::DeviceSpec& dev,
                                 const std::string& name, const GemmDims& dims,
                                 const GemmLoadA& a, const GemmLoadB& b,
                                 const GemmStore& store, const GemmTiling& t,
                                 int elem_bytes) {
  FCM_CHECK(dims.m > 0 && dims.n > 0 && dims.k > 0, "gemm: empty dims");
  FCM_CHECK(t.tm > 0 && t.tn > 0, "gemm: bad tiling");
  const std::int64_t nm = ceil_div(dims.m, t.tm);
  const std::int64_t nn = ceil_div(dims.n, t.tn);

  gpusim::LaunchConfig cfg;
  cfg.grid_blocks = nm * nn;
  cfg.threads_per_block = kThreads;
  // A and B panels are streamed through shared memory in K-chunks of 32.
  cfg.shared_bytes =
      static_cast<std::int64_t>(t.tm + t.tn) * 32 * elem_bytes;

  auto body = [&](gpusim::BlockContext& ctx) {
    const std::int64_t bid = ctx.block_id();
    const std::int64_t mi = bid / nn;
    const std::int64_t ni = bid % nn;
    const std::int64_t m0 = mi * t.tm;
    const std::int64_t mcur = std::min<std::int64_t>(t.tm, dims.m - m0);
    const std::int64_t n0 = ni * t.tn;
    const std::int64_t ncur = std::min<std::int64_t>(t.tn, dims.n - n0);

    ctx.load_weights(mcur * dims.k * elem_bytes);
    ctx.load_ifm(ncur * dims.k * elem_bytes);
    for (std::int64_t i = m0; i < m0 + mcur; ++i) {
      for (std::int64_t j = n0; j < n0 + ncur; ++j) {
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < dims.k; ++kk) {
          acc += a(i, kk) * b(kk, j);
        }
        store(i, j, acc);
      }
    }
    const std::int64_t macs = mcur * ncur * dims.k;
    ctx.add_flops(2 * macs);
    ctx.shared_load(2 * macs * elem_bytes);
    ctx.shared_store((mcur + ncur) * dims.k * elem_bytes);
    ctx.global_store(mcur * ncur * elem_bytes);
  };

  return launch_kernel(dev, "gemm/" + name, cfg, body);
}

gpusim::KernelStats gemm_stats(const GemmDims& dims, const GemmTiling& t,
                               int elem_bytes) {
  const std::int64_t nm = ceil_div(dims.m, t.tm);
  const std::int64_t nn = ceil_div(dims.n, t.tn);
  gpusim::KernelStats st;
  st.global_load_bytes = (nn * dims.m + nm * dims.n) * dims.k * elem_bytes;
  st.weight_load_bytes = nn * dims.m * dims.k * elem_bytes;
  st.ifm_load_bytes = nm * dims.n * dims.k * elem_bytes;
  st.global_store_bytes = dims.m * dims.n * elem_bytes;
  const std::int64_t macs = dims.m * dims.n * dims.k;
  st.flops = 2 * macs;
  st.shared_load_bytes = 2 * macs * elem_bytes;
  st.shared_store_bytes = st.global_load_bytes;
  st.num_blocks = nm * nn;
  st.threads_per_block = kThreads;
  st.shared_bytes_per_block =
      static_cast<std::int64_t>(t.tm + t.tn) * 32 * elem_bytes;
  st.launches = 1;
  return st;
}

}  // namespace fcm::baselines
