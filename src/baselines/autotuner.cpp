#include "baselines/autotuner.hpp"

#include <algorithm>

#include "gpusim/roofline.hpp"
#include "planner/cost_model.hpp"
#include "planner/tile_search.hpp"

namespace fcm::baselines {

namespace {
struct Xorshift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
};
}  // namespace

std::optional<TuneResult> autotune_direct(const gpusim::DeviceSpec& dev,
                                          const LayerSpec& spec, DType dt,
                                          int trials, std::uint64_t seed) {
  Xorshift rng{seed * 0x9e3779b97f4a7c15ull + 0x1234567ull};
  const auto h_cands = planner::spatial_tile_candidates(spec.out_h());
  const auto w_cands = planner::spatial_tile_candidates(spec.out_w());
  const auto f_cands = planner::channel_tile_candidates(
      spec.out_c, spec.kind != ConvKind::kDepthwise);

  std::optional<TuneResult> best;
  for (int i = 0; i < trials; ++i) {
    const ConvTiling t{h_cands[static_cast<std::size_t>(rng.pick(
                           static_cast<int>(h_cands.size())))],
                       w_cands[static_cast<std::size_t>(rng.pick(
                           static_cast<int>(w_cands.size())))],
                       f_cands[static_cast<std::size_t>(rng.pick(
                           static_cast<int>(f_cands.size())))]};
    std::int64_t l1 = 0;
    switch (spec.kind) {
      case ConvKind::kPointwise: l1 = pw_l1_bytes(spec, t, dt); break;
      case ConvKind::kDepthwise: l1 = dw_l1_bytes(spec, t, dt); break;
      case ConvKind::kStandard: l1 = std_l1_bytes(spec, t, dt); break;
    }
    if (l1 > dev.l1_bytes) continue;
    const auto st = planner::lbl_stats(spec, t, dt);
    if (st.shared_bytes_per_block > dev.max_shared_bytes) continue;
    const double time = gpusim::estimate_time(dev, st).total_s;
    if (!best || time < best->time_s) best = TuneResult{t, st, time};
  }
  return best;
}

}  // namespace fcm::baselines
