// im2col lowering: unfolds a convolution's input into the matrix the
// explicit-GEMM algorithm multiplies.
//
// Row index r encodes (c, kh, kw); column index encodes (oh, ow). The
// explicit cuDNN GEMM algorithm materialises this matrix in global memory (a
// K×N write plus a K×N reload in the GEMM) — exactly the extra traffic the
// paper credits the implicit algorithms with avoiding.
#pragma once

#include <vector>

#include "common/tensor.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "layers/layer_spec.hpp"

namespace fcm::baselines {

/// K and N of the lowered matrix for `spec` (per filter group; depthwise
/// convolutions lower per-channel with K = kh·kw).
struct Im2colDims {
  std::int64_t k = 0;  ///< rows: c·kh·kw (1·kh·kw per group for DW)
  std::int64_t n = 0;  ///< cols: out_h·out_w
  int groups = 1;      ///< 1 for PW/standard, in_c for DW
};

Im2colDims im2col_dims(const LayerSpec& spec);

/// Virtual im2col element for group `g` (g is the channel for DW, 0
/// otherwise): returns the IFM value at (row r, col n) or 0 in the padding.
float im2col_at(const LayerSpec& spec, const TensorF& ifm, int g,
                std::int64_t r, std::int64_t n);

/// Materialise the matrix for group `g` on the simulator (the explicit-GEMM
/// pre-pass). `out` is resized to k·n, row-major. Returns the pass's stats
/// (reads of valid IFM elements, K·N stores).
gpusim::KernelStats run_im2col_f32(const gpusim::DeviceSpec& dev,
                                   const LayerSpec& spec, const TensorF& ifm,
                                   int g, std::vector<float>& out);

/// Analytic stats of the materialisation pass for all groups combined.
gpusim::KernelStats im2col_stats(const LayerSpec& spec, DType dt);

}  // namespace fcm::baselines
