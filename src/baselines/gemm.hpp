// Blocked GEMM substrate used by the cuDNN-like convolution algorithms.
//
// C[M,N] = A[M,K] · B[K,N] with an output-stationary block tiling (tm × tn).
// Each simulated block streams the K dimension, loading its A panel once per
// column-block and its B panel once per row-block — the classic traffic
// pattern   loads = ⌈N/tn⌉·M·K + ⌈M/tm⌉·K·N,   stores = M·N.
// B is supplied through an accessor so the implicit-GEMM algorithms can read
// the virtual im2col matrix without materialising it.
#pragma once

#include <functional>
#include <string>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"

namespace fcm::baselines {

struct GemmDims {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
};

struct GemmTiling {
  int tm = 64;
  int tn = 64;
};

/// Element accessors. `a(i,k)` / `b(k,j)` return operands; `store(i,j,v)`
/// receives each output exactly once.
using GemmLoadA = std::function<float(std::int64_t, std::int64_t)>;
using GemmLoadB = std::function<float(std::int64_t, std::int64_t)>;
using GemmStore = std::function<void(std::int64_t, std::int64_t, float)>;

/// Functional blocked GEMM on the simulator. `b_bytes_per_elem` lets callers
/// model B elements that live in global memory at a different width (e.g.
/// int8 feature maps read by an implicit-GEMM int8 algorithm).
gpusim::KernelStats run_gemm_f32(const gpusim::DeviceSpec& dev,
                                 const std::string& name, const GemmDims& dims,
                                 const GemmLoadA& a, const GemmLoadB& b,
                                 const GemmStore& store, const GemmTiling& t,
                                 int elem_bytes);

/// Analytic traffic/ops profile of the same launch (no data touched).
gpusim::KernelStats gemm_stats(const GemmDims& dims, const GemmTiling& t,
                               int elem_bytes);

}  // namespace fcm::baselines
