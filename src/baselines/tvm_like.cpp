#include "baselines/tvm_like.hpp"

#include "baselines/autotuner.hpp"
#include "common/error.hpp"
#include "gpusim/roofline.hpp"

namespace fcm::baselines {

const char* tvm_impl_name(TvmImpl i) {
  switch (i) {
    case TvmImpl::kCudnnGemm: return "cudnn:GEMM";
    case TvmImpl::kCudnnImplicitGemm: return "cudnn:IMPL_GEMM";
    case TvmImpl::kCudnnImplicitPrecompGemm: return "cudnn:IMPL_PRECOMP";
    case TvmImpl::kDirectTuned: return "direct(tuned)";
  }
  return "?";
}

double TvmPlan::total_time_s() const {
  double t = 0.0;
  for (const auto& s : steps) t += s.time_s;
  return t;
}

std::int64_t TvmPlan::total_gma_bytes() const {
  std::int64_t b = 0;
  for (const auto& s : steps) b += s.stats.gma_bytes();
  return b;
}

TvmPlan tvm_compile(const gpusim::DeviceSpec& dev, const ModelGraph& model,
                    DType dt, int tuning_trials, std::uint64_t seed) {
  model.validate();
  TvmPlan plan;
  plan.model_name = model.name + "(TVM)";
  plan.device_name = dev.name;
  plan.dtype = dt;

  for (int i = 0; i < model.num_layers(); ++i) {
    const LayerSpec& spec = model.layers[static_cast<std::size_t>(i)];
    // INT8 standard convs fall back to FP32, like the FCM runtime does.
    const DType layer_dt = spec.kind == ConvKind::kStandard ? DType::kF32 : dt;

    TvmStep best;
    bool have = false;
    const CudnnAlgo algos[] = {CudnnAlgo::kGemm, CudnnAlgo::kImplicitGemm,
                               CudnnAlgo::kImplicitPrecompGemm};
    const TvmImpl impls[] = {TvmImpl::kCudnnGemm, TvmImpl::kCudnnImplicitGemm,
                             TvmImpl::kCudnnImplicitPrecompGemm};
    for (int a = 0; a < 3; ++a) {
      const auto st = cudnn_stats(dev, algos[a], spec, layer_dt);
      const double time = gpusim::estimate_time(dev, st).total_s;
      if (!have || time < best.time_s) {
        best = TvmStep{i, impls[a], {}, st, time};
        have = true;
      }
    }
    const auto tuned = autotune_direct(dev, spec, layer_dt, tuning_trials,
                                       seed + static_cast<std::uint64_t>(i));
    if (tuned.has_value() && tuned->time_s < best.time_s) {
      best = TvmStep{i, TvmImpl::kDirectTuned, tuned->tiling, tuned->stats,
                     tuned->time_s};
      have = true;
    }
    FCM_CHECK(have, "tvm_compile: no implementation for " + spec.name);
    plan.steps.push_back(best);
  }
  return plan;
}

}  // namespace fcm::baselines
