#include "baselines/cudnn_like.hpp"

#include <algorithm>
#include <vector>

#include "baselines/im2col.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/launch.hpp"
#include "planner/cost_model.hpp"

namespace fcm::baselines {

const char* cudnn_algo_name(CudnnAlgo a) {
  switch (a) {
    case CudnnAlgo::kGemm: return "GEMM";
    case CudnnAlgo::kImplicitGemm: return "IMPL_GEMM";
    case CudnnAlgo::kImplicitPrecompGemm: return "IMPL_PRECOMP_GEMM";
  }
  return "?";
}

namespace {

GemmTiling pick_tiling(const GemmDims& d) {
  GemmTiling t;
  t.tm = static_cast<int>(std::min<std::int64_t>(64, d.m));
  t.tn = static_cast<int>(std::min<std::int64_t>(64, d.n));
  return t;
}

/// Grouped (depthwise) GEMM column-tile width.
constexpr int kDwTn = 128;

/// Offset-table entry size: one precomputed (channel, dy, dx) offset per
/// virtual-matrix row, 4 bytes.
constexpr std::int64_t kOffsetEntryBytes = 4;

std::int64_t index_overhead_ops(std::int64_t macs) {
  return static_cast<std::int64_t>(kImplicitIndexOpsPerMac *
                                   static_cast<double>(macs));
}

/// Analytic profile of the grouped depthwise GEMM stage.
gpusim::KernelStats dw_gemm_stage_stats(const LayerSpec& spec, DType dt) {
  const Im2colDims d = im2col_dims(spec);
  const std::int64_t esz = static_cast<std::int64_t>(dtype_size(dt));
  const std::int64_t blocks_per_group = ceil_div(d.n, kDwTn);
  gpusim::KernelStats st;
  st.global_load_bytes =
      d.groups * (blocks_per_group * d.k + d.k * d.n) * esz;
  st.weight_load_bytes = d.groups * blocks_per_group * d.k * esz;
  st.ifm_load_bytes = d.groups * d.k * d.n * esz;
  st.global_store_bytes = d.groups * d.n * esz;
  const std::int64_t macs = d.groups * d.k * d.n;
  st.flops = 2 * macs;
  st.num_blocks = d.groups * blocks_per_group;
  st.threads_per_block = 256;
  st.shared_bytes_per_block = (1 + kDwTn) * 32 * esz;
  st.launches = 1;
  return st;
}

}  // namespace

gpusim::KernelStats cudnn_stats(const gpusim::DeviceSpec& dev, CudnnAlgo algo,
                                const LayerSpec& spec, DType dt) {
  (void)dev;
  spec.validate();
  const std::int64_t esz = static_cast<std::int64_t>(dtype_size(dt));
  gpusim::KernelStats st;
  std::int64_t macs = 0;

  if (spec.kind == ConvKind::kDepthwise) {
    st = dw_gemm_stage_stats(spec, dt);
    const Im2colDims d = im2col_dims(spec);
    macs = d.groups * d.k * d.n;
  } else {
    const Im2colDims d = im2col_dims(spec);
    const GemmDims dims{spec.out_c, d.n, d.k};
    st = gemm_stats(dims, pick_tiling(dims), static_cast<int>(esz));
    macs = dims.m * dims.n * dims.k;
  }

  switch (algo) {
    case CudnnAlgo::kGemm: {
      st += im2col_stats(spec, dt);
      break;
    }
    case CudnnAlgo::kImplicitGemm: {
      st.flops += index_overhead_ops(macs);
      break;
    }
    case CudnnAlgo::kImplicitPrecompGemm: {
      const Im2colDims d = im2col_dims(spec);
      st.global_load_bytes += st.num_blocks * d.k * kOffsetEntryBytes;
      break;
    }
  }

  // cuDNN fuses the elementwise norm/activation into the conv epilogue.
  st.flops += spec.ofm_count() * planner::epilogue_ops_per_element(spec, dt);
  return st;
}

namespace {

/// Functional grouped depthwise GEMM (one launch over all groups).
gpusim::KernelStats run_dw_gemm(const gpusim::DeviceSpec& dev,
                                const LayerSpec& spec, const TensorF& ifm,
                                const WeightsF& w, const EpilogueF32& ep,
                                TensorF& ofm,
                                const std::vector<float>* matrix) {
  const Im2colDims d = im2col_dims(spec);
  const std::int64_t blocks_per_group = ceil_div(d.n, kDwTn);

  gpusim::LaunchConfig cfg;
  cfg.grid_blocks = d.groups * blocks_per_group;
  cfg.threads_per_block = 256;
  cfg.shared_bytes = (1 + kDwTn) * 32 * 4;

  auto body = [&](gpusim::BlockContext& ctx) {
    const std::int64_t bid = ctx.block_id();
    const int g = static_cast<int>(bid / blocks_per_group);
    const std::int64_t n0 = (bid % blocks_per_group) * kDwTn;
    const std::int64_t n1 = std::min<std::int64_t>(n0 + kDwTn, d.n);

    ctx.load_weights(d.k * 4);
    ctx.load_ifm(d.k * (n1 - n0) * 4);
    const int W = spec.out_w();
    for (std::int64_t n = n0; n < n1; ++n) {
      float acc = 0.0f;
      for (std::int64_t r = 0; r < d.k; ++r) {
        const float b = matrix != nullptr
                            ? (*matrix)[static_cast<std::size_t>(
                                  (g * d.k + r) * d.n + n)]
                            : im2col_at(spec, ifm, g, r, n);
        acc += w.at(g, 0, static_cast<int>(r / spec.kw),
                    static_cast<int>(r % spec.kw)) *
               b;
      }
      ofm.at(g, static_cast<int>(n / W), static_cast<int>(n % W)) =
          ep.apply(g, acc);
    }
    ctx.add_flops(2 * d.k * (n1 - n0));
    ctx.global_store((n1 - n0) * 4);
  };

  return launch_kernel(dev, "cudnn_dw_gemm/" + spec.name, cfg, body);
}

/// Functional im2col over every group into one [g][r][n] matrix.
gpusim::KernelStats run_im2col_all(const gpusim::DeviceSpec& dev,
                                   const LayerSpec& spec, const TensorF& ifm,
                                   std::vector<float>& matrix) {
  const Im2colDims d = im2col_dims(spec);
  matrix.assign(static_cast<std::size_t>(d.groups * d.k * d.n), 0.0f);
  const std::int64_t blocks_per_group = ceil_div(d.n, 256);

  gpusim::LaunchConfig cfg;
  cfg.grid_blocks = d.groups * blocks_per_group;
  cfg.threads_per_block = 256;
  cfg.shared_bytes = 0;

  auto body = [&](gpusim::BlockContext& ctx) {
    const std::int64_t bid = ctx.block_id();
    const int g = static_cast<int>(bid / blocks_per_group);
    const std::int64_t n0 = (bid % blocks_per_group) * 256;
    const std::int64_t n1 = std::min<std::int64_t>(n0 + 256, d.n);
    std::int64_t valid = 0;
    for (std::int64_t r = 0; r < d.k; ++r) {
      for (std::int64_t n = n0; n < n1; ++n) {
        matrix[static_cast<std::size_t>((g * d.k + r) * d.n + n)] =
            im2col_at(spec, ifm, g, r, n);
        const int W = spec.out_w();
        const int oh = static_cast<int>(n / W);
        const int ow = static_cast<int>(n % W);
        int kh, kw;
        if (spec.kind == ConvKind::kDepthwise) {
          kh = static_cast<int>(r / spec.kw);
          kw = static_cast<int>(r % spec.kw);
        } else {
          const int rem = static_cast<int>(r % (spec.kh * spec.kw));
          kh = rem / spec.kw;
          kw = rem % spec.kw;
        }
        const int ih = oh * spec.stride - spec.pad + kh;
        const int iw = ow * spec.stride - spec.pad + kw;
        if (ih >= 0 && ih < spec.in_h && iw >= 0 && iw < spec.in_w) ++valid;
      }
    }
    ctx.load_ifm(valid * 4);
    ctx.global_store((n1 - n0) * d.k * 4);
  };

  return launch_kernel(dev, "im2col_all/" + spec.name, cfg, body);
}

}  // namespace

gpusim::KernelStats run_cudnn_f32(const gpusim::DeviceSpec& dev,
                                  CudnnAlgo algo, const LayerSpec& spec,
                                  const TensorF& ifm, const WeightsF& w,
                                  const EpilogueF32& ep, TensorF& ofm) {
  spec.validate();
  FCM_CHECK(ifm.shape() == spec.ifm_shape(), spec.name + ": IFM shape");
  FCM_CHECK(ofm.shape() == spec.ofm_shape(), spec.name + ": OFM shape");

  gpusim::KernelStats st;
  std::vector<float> matrix;
  const bool explicit_gemm = algo == CudnnAlgo::kGemm;

  if (spec.kind == ConvKind::kDepthwise) {
    if (explicit_gemm) {
      st += run_im2col_all(dev, spec, ifm, matrix);
    }
    st += run_dw_gemm(dev, spec, ifm, w, ep, ofm,
                      explicit_gemm ? &matrix : nullptr);
  } else {
    const Im2colDims d = im2col_dims(spec);
    if (explicit_gemm) {
      st += run_im2col_all(dev, spec, ifm, matrix);
    }
    const GemmDims dims{spec.out_c, d.n, d.k};
    auto a = [&](std::int64_t i, std::int64_t k) {
      return w[i * d.k + k];  // weights are already (f, c, kh, kw) row-major
    };
    auto b = [&](std::int64_t k, std::int64_t n) {
      return explicit_gemm ? matrix[static_cast<std::size_t>(k * d.n + n)]
                           : im2col_at(spec, ifm, 0, k, n);
    };
    const int W = spec.out_w();
    auto store = [&](std::int64_t i, std::int64_t n, float acc) {
      ofm.at(static_cast<int>(i), static_cast<int>(n / W),
             static_cast<int>(n % W)) = ep.apply(static_cast<int>(i), acc);
    };
    st += run_gemm_f32(dev, cudnn_algo_name(algo) + ("/" + spec.name), dims, a,
                       b, store, pick_tiling(dims), 4);
  }

  std::int64_t macs;
  {
    const Im2colDims d = im2col_dims(spec);
    macs = spec.kind == ConvKind::kDepthwise
               ? static_cast<std::int64_t>(d.groups) * d.k * d.n
               : static_cast<std::int64_t>(spec.out_c) * d.k * d.n;
  }
  if (algo == CudnnAlgo::kImplicitGemm) {
    st.flops += index_overhead_ops(macs);
  } else if (algo == CudnnAlgo::kImplicitPrecompGemm) {
    const Im2colDims d = im2col_dims(spec);
    st.global_load_bytes += st.num_blocks * d.k * kOffsetEntryBytes;
  }
  st.flops +=
      spec.ofm_count() * planner::epilogue_ops_per_element(spec, DType::kF32);
  return st;
}

}  // namespace fcm::baselines
