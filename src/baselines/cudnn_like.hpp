// cuDNN-like convolution algorithms (the paper's baseline, §V-C).
//
// The paper compares FCM/LBL against the three cuDNN algorithms that
// performed best on its workloads:
//   GEMM                  — explicit im2col materialisation + GEMM
//   IMPLICIT_GEMM         — GEMM over a virtual im2col matrix (no
//                           materialisation, extra index arithmetic)
//   IMPLICIT_PRECOMP_GEMM — implicit GEMM with a precomputed offset table
//                           (no index arithmetic, small extra loads)
// cuDNN fuses only the elementwise epilogue with the conv (never conv+conv),
// which is why the paper still calls its execution "layer-by-layer".
#pragma once

#include "baselines/gemm.hpp"
#include "common/tensor.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "kernels/epilogue.hpp"
#include "layers/layer_spec.hpp"

namespace fcm::baselines {

enum class CudnnAlgo : std::uint8_t {
  kGemm,
  kImplicitGemm,
  kImplicitPrecompGemm,
};

const char* cudnn_algo_name(CudnnAlgo a);

/// Extra integer index operations per MAC charged to the implicit algorithm
/// (address reconstruction of the virtual matrix element).
inline constexpr double kImplicitIndexOpsPerMac = 2.0;

/// Functional execution on the simulator (FP32): computes the layer via the
/// selected algorithm and returns combined stats of all passes. Output is
/// bit-comparable to conv_ref_f32 up to FP associativity.
gpusim::KernelStats run_cudnn_f32(const gpusim::DeviceSpec& dev,
                                  CudnnAlgo algo, const LayerSpec& spec,
                                  const TensorF& ifm, const WeightsF& w,
                                  const EpilogueF32& ep, TensorF& ofm);

/// Analytic stats of the same execution (no data touched); supports both
/// precisions for the TVM-like compiler.
gpusim::KernelStats cudnn_stats(const gpusim::DeviceSpec& dev, CudnnAlgo algo,
                                const LayerSpec& spec, DType dt);

}  // namespace fcm::baselines
