// TVM-like graph compiler baseline (paper §V-C).
//
// Models what the paper's TVM configuration does — and deliberately nothing
// more:
//  * fuses each convolution with its trailing norm/activation (the
//    conv+elementwise fusion TVM applies as a core optimisation),
//  * never fuses two convolutions,
//  * selects the best implementation per layer from the cuDNN-like backend
//    algorithms plus an auto-tuned direct kernel (20 hardware-in-the-loop
//    trials), optimising execution *time*.
#pragma once

#include <string>
#include <vector>

#include "baselines/cudnn_like.hpp"
#include "gpusim/device_spec.hpp"
#include "kernels/tiling.hpp"
#include "layers/model_graph.hpp"

namespace fcm::baselines {

enum class TvmImpl : std::uint8_t {
  kCudnnGemm,
  kCudnnImplicitGemm,
  kCudnnImplicitPrecompGemm,
  kDirectTuned,
};

const char* tvm_impl_name(TvmImpl i);

struct TvmStep {
  int layer = 0;
  TvmImpl impl = TvmImpl::kCudnnImplicitPrecompGemm;
  ConvTiling direct_tiling;  ///< valid when impl == kDirectTuned
  gpusim::KernelStats stats;
  double time_s = 0.0;
};

struct TvmPlan {
  std::string model_name;
  std::string device_name;
  DType dtype = DType::kF32;
  std::vector<TvmStep> steps;

  double total_time_s() const;
  std::int64_t total_gma_bytes() const;
};

/// Compile `model` the TVM way: per-layer algorithm selection with
/// `tuning_trials` auto-tuner iterations per layer.
TvmPlan tvm_compile(const gpusim::DeviceSpec& dev, const ModelGraph& model,
                    DType dt, int tuning_trials = 20,
                    std::uint64_t seed = 42);

}  // namespace fcm::baselines
