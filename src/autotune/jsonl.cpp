#include "autotune/jsonl.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace fcm::autotune::jsonl {

std::string fmt_double_rt(double v) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        FCM_CHECK(static_cast<unsigned char>(c) >= 0x20,
                  "autotune: control character in string field");
        out += c;
    }
  }
  out += '"';
  return out;
}

Fields LineScanner::object() {
  Fields fields;
  skip_ws();
  expect('{', "object");
  skip_ws();
  if (!eat('}')) {
    for (;;) {
      skip_ws();
      std::string key = string_lit();
      for (const auto& [seen, unused] : fields) {
        if (seen == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "':' after key \"" + key + "\"");
      skip_ws();
      fields.emplace_back(std::move(key), value());
      skip_ws();
      if (eat(',')) continue;
      expect('}', "',' or '}'");
      break;
    }
  }
  skip_ws();
  if (i_ != s_.size()) fail("trailing characters after object");
  return fields;
}

void LineScanner::fail(const std::string& msg) const {
  throw Error(context_ + " line " + std::to_string(line_no_) + ": " + msg);
}

void LineScanner::skip_ws() {
  while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
}

bool LineScanner::eat(char c) {
  if (i_ < s_.size() && s_[i_] == c) {
    ++i_;
    return true;
  }
  return false;
}

void LineScanner::expect(char c, const std::string& what) {
  if (!eat(c)) fail("expected " + what);
}

std::string LineScanner::string_lit() {
  if (!eat('"')) fail("expected string");
  std::string out;
  while (i_ < s_.size() && s_[i_] != '"') {
    char c = s_[i_++];
    if (c == '\\') {
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        default: fail(std::string("unsupported escape '\\") + e + "'");
      }
    }
    out += c;
  }
  if (!eat('"')) fail("unterminated string");
  return out;
}

FieldValue LineScanner::value() {
  FieldValue v;
  if (i_ < s_.size() && s_[i_] == '"') {
    v.is_string = true;
    v.str = string_lit();
    return v;
  }
  const std::size_t start = i_;
  while (i_ < s_.size() &&
         (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
          s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' ||
          s_[i_] == 'E')) {
    ++i_;
  }
  if (i_ == start) fail("expected number or string value");
  v.raw = s_.substr(start, i_ - start);
  char* end = nullptr;
  v.num = std::strtod(v.raw.c_str(), &end);
  if (end != v.raw.c_str() + v.raw.size()) {
    fail("malformed number '" + v.raw + "'");
  }
  return v;
}

double FieldReader::number(const char* key) {
  const FieldValue& v = require(key);
  if (v.is_string) scanner_.fail(std::string(key) + " must be a number");
  return v.num;
}

std::uint64_t FieldReader::u64(const char* key) {
  // Re-parse the raw token: a 64-bit integer must not round-trip through the
  // scanner's double (2^53 would silently truncate it).
  const FieldValue& v = require(key);
  if (v.is_string || v.raw.find_first_of(".eE-+") != std::string::npos) {
    scanner_.fail(std::string(key) + " must be a non-negative integer");
  }
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v.raw.c_str(), &end, 10);
  if (end != v.raw.c_str() + v.raw.size()) {
    scanner_.fail(std::string(key) + " must be a non-negative integer");
  }
  return x;
}

std::string FieldReader::string(const char* key) {
  const FieldValue& v = require(key);
  if (!v.is_string) scanner_.fail(std::string(key) + " must be a string");
  return v.str;
}

void FieldReader::check_no_unknown() const {
  for (const auto& [key, unused] : fields_) {
    bool used = false;
    for (const auto& u : used_) used = used || u == key;
    if (!used) scanner_.fail("unknown key \"" + key + "\"");
  }
}

const FieldValue* FieldReader::find(const char* key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const FieldValue& FieldReader::require(const char* key) {
  const FieldValue* v = find(key);
  if (v == nullptr) scanner_.fail(std::string("missing key \"") + key + "\"");
  used_.push_back(key);
  return *v;
}

}  // namespace fcm::autotune::jsonl
