// Offline fitting of the calibrated cost model (fcmtune's engine).
//
// Closed-form ridge regression of executed sim seconds onto the feature
// vectors in a feature log: solve (XᵀX + λ·diag(XᵀX) + εI) w = Xᵀy by
// Gaussian elimination over a kNumFeatures-square system. Deliberately
// deterministic and dependency-free — fitting the same log twice yields a
// bit-identical serialized model, which CI asserts.
//
// The fitted weights plug into the planner through CalibratedCostModel
// (planner::CostModel): score = w · featurize(candidate), i.e. predicted
// seconds instead of the analytical GMA-byte objective.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "autotune/feature_log.hpp"
#include "autotune/features.hpp"
#include "planner/cost_model_iface.hpp"

namespace fcm::autotune {

/// Bump when the serialized model format or the feature schema changes.
inline constexpr int kCostModelVersion = 1;

struct FitOptions {
  /// Ridge penalty, scaled per-feature by diag(XᵀX) so the shrinkage is
  /// invariant to the features' (deliberately mixed) units.
  double lambda = 1e-3;
};

struct FitResult {
  FeatureVector weights{};
  /// Number of "execute" records the fit used (plan records carry no
  /// execution target and are skipped).
  std::size_t records_used = 0;
  /// Training-set mean |predicted − executed| of the log's own analytical
  /// predictions, and of the fitted model — the before/after the fit buys.
  double mae_analytical = 0.0;
  double mae_calibrated = 0.0;
};

/// Fit weights over the log's "execute" records. Throws when the log has no
/// usable records.
FitResult fit_cost_model(const FeatureLog& log, const FitOptions& opt = {});

/// Mean |w·x − executed| of `weights` over the log's "execute" records
/// (held-out evaluation); throws when the log has none.
double mean_abs_error(const FeatureVector& weights, const FeatureLog& log);
/// Mean |predicted − executed| of the log's own analytical predictions.
double mean_abs_error_analytical(const FeatureLog& log);

/// One strict-JSON line, keyed by feature names, versioned; parse rejects
/// unknown keys, version/width mismatches and trailing garbage.
std::string serialize_cost_model(const FeatureVector& weights);
FeatureVector parse_cost_model(const std::string& text);
FeatureVector load_cost_model_file(const std::string& path);
void save_cost_model_file(const FeatureVector& weights,
                          const std::string& path);

/// Wrap fitted weights as the planner-facing cost model (score = predicted
/// seconds). Install with planner::set_calibrated_cost_model().
std::shared_ptr<const planner::CostModel> make_calibrated_cost_model(
    const FeatureVector& weights);

}  // namespace fcm::autotune
