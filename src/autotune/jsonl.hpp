// Strict flat-JSON line scanning shared by the autotune file formats
// (feature_log, fit). Same discipline as src/workload/trace.cpp — that copy
// is deliberately independent so the two subsystems' formats can evolve and
// version-bump separately; within autotune the machinery is shared.
//
// Accepted grammar per line: one flat JSON object with string keys and
// number-or-string values. No nesting, no duplicate keys, no trailing
// garbage. Every violation throws fcm::Error("<context> line N: ...").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fcm::autotune::jsonl {

/// Shortest decimal rendering of `v` that parses back bit-identically —
/// "0.004" stays "0.004", while values that genuinely need 17 digits get
/// them. Keeps logs human-readable without sacrificing exact round-trip.
std::string fmt_double_rt(double v);

/// JSON string literal with the minimal escapes the strict parser accepts.
/// Throws on control characters.
std::string json_string(const std::string& s);

/// One parsed value: a number (with its raw token, so 64-bit integers can be
/// re-parsed without a double round-trip) or a string.
struct FieldValue {
  bool is_string = false;
  double num = 0.0;
  std::string raw;  // number token as written
  std::string str;  // unescaped string contents
};

using Fields = std::vector<std::pair<std::string, FieldValue>>;

/// Strict scanner for one flat JSON object line.
class LineScanner {
 public:
  /// `context` prefixes every error, e.g. "feature log".
  LineScanner(const std::string& line, std::size_t line_no,
              std::string context)
      : s_(line), line_no_(line_no), context_(std::move(context)) {}

  Fields object();

  [[noreturn]] void fail(const std::string& msg) const;

 private:
  void skip_ws();
  bool eat(char c);
  void expect(char c, const std::string& what);
  std::string string_lit();
  FieldValue value();

  const std::string& s_;
  std::size_t i_ = 0;
  std::size_t line_no_;
  std::string context_;
};

/// Typed field accessors over one line's parsed object.
class FieldReader {
 public:
  FieldReader(Fields fields, const LineScanner& scanner)
      : fields_(std::move(fields)), scanner_(scanner) {}

  bool has(const char* key) const { return find(key) != nullptr; }
  double number(const char* key);
  std::uint64_t u64(const char* key);
  std::string string(const char* key);

  /// Every key must have been consumed by one of the accessors above.
  void check_no_unknown() const;

 private:
  const FieldValue* find(const char* key) const;
  const FieldValue& require(const char* key);

  Fields fields_;
  const LineScanner& scanner_;
  std::vector<std::string> used_;
};

}  // namespace fcm::autotune::jsonl
