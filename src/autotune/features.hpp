// Plan-candidate featurizer (tentpole of the autotuning loop).
//
// Maps one kernel candidate — (DeviceSpec, KernelStats, CandidateContext) —
// to a fixed-width vector of documented features, the representation shared
// by the feature log (src/autotune/feature_log), the offline fitter
// (src/autotune/fit) and the calibrated cost model that feeds back into the
// planner. The Halide-autoscheduler architecture: hand-designed features, a
// cheap learned combination on top.
//
// Every feature is additive across plan steps, so a whole plan's feature
// vector is the sum of its steps' vectors and a linear model over plan
// features decomposes exactly into per-step predictions.
#pragma once

#include <array>
#include <cstddef>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "layers/model_graph.hpp"
#include "planner/cost_model_iface.hpp"
#include "planner/plan.hpp"

namespace fcm::autotune {

/// Width of the feature vector. Bump kFeatureLogVersion (feature_log.hpp)
/// when this — or any feature's definition — changes: logged vectors are
/// only comparable within one schema version.
inline constexpr std::size_t kNumFeatures = 16;

using FeatureVector = std::array<double, kNumFeatures>;

/// Feature indices. Scales are chosen so typical magnitudes land within a
/// few orders of ten (GB, tera-ops, seconds, fractions) — ridge regression
/// with a scale-aware penalty does not require exact normalisation, but
/// wildly mixed units cost numeric headroom.
enum Feature : std::size_t {
  kFLaunches = 0,        ///< kernel launches (constant-overhead carrier)
  kFAnalyticalSeconds,   ///< roofline total_s — the analytical prediction
  kFComputeSeconds,      ///< roofline arithmetic-pipeline time
  kFMemorySeconds,       ///< roofline DRAM-traffic time
  kFSharedSeconds,       ///< roofline shared-memory time
  kFLoadGB,              ///< global loads, GB
  kFStoreGB,             ///< global stores, GB
  kFWeightGB,            ///< weight subset of loads, GB (L2 reuse proxy)
  kFIfmGB,               ///< feature-map subset of loads, GB
  kFFlopsTera,           ///< FP32 ops, tera
  kFIntOpsTera,          ///< INT8 ops, tera
  kFRedundantTera,       ///< recomputed halo ops, tera (PWDW_R overlap)
  kFOccupancy,           ///< min(1, blocks / SMs) — launch-tail exposure
  kFL1Fraction,          ///< working set over L1 capacity
  kFPaddingFraction,     ///< filter taps landing in zero padding
  kFBoundaryFraction,    ///< partial (boundary) blocks in the grid
};

/// Stable snake_case name of feature `i` (docs, README, fcmtune output).
const char* feature_name(std::size_t i);

/// Featurize one kernel candidate.
FeatureVector featurize(const gpusim::DeviceSpec& dev,
                        const gpusim::KernelStats& stats,
                        const planner::CandidateContext& ctx);

/// Featurize a whole plan: the sum over its steps, with each step's
/// CandidateContext re-derived from the model graph exactly as the tile
/// search derived it (planner/cost_model_iface contexts), so logged plan
/// features agree with planning-time candidate features.
FeatureVector featurize_plan(const gpusim::DeviceSpec& dev,
                             const ModelGraph& model,
                             const planner::Plan& plan);

}  // namespace fcm::autotune
