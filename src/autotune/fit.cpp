#include "autotune/fit.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "autotune/jsonl.hpp"
#include "common/error.hpp"

namespace fcm::autotune {

namespace {

constexpr std::size_t N = kNumFeatures;

/// Solve the N×N system A·w = b in place by Gaussian elimination with
/// partial pivoting. Serial and index-ordered, so identical inputs give
/// bit-identical solutions on every run.
FeatureVector solve(double a[N][N], double b[N]) {
  for (std::size_t col = 0; col < N; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < N; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < N; ++c) std::swap(a[col][c], a[pivot][c]);
      std::swap(b[col], b[pivot]);
    }
    FCM_CHECK(a[col][col] != 0.0,
              "fit: singular normal equations (feature " +
                  std::string(feature_name(col)) +
                  " — is the log degenerate?)");
    for (std::size_t r = col + 1; r < N; ++r) {
      const double m = a[r][col] / a[col][col];
      if (m == 0.0) continue;
      for (std::size_t c = col; c < N; ++c) a[r][c] -= m * a[col][c];
      b[r] -= m * b[col];
    }
  }
  FeatureVector w{};
  for (std::size_t ri = N; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < N; ++c) acc -= a[ri][c] * w[c];
    w[ri] = acc / a[ri][ri];
  }
  return w;
}

double dot(const FeatureVector& w, const FeatureVector& x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < N; ++i) acc += w[i] * x[i];
  return acc;
}

/// The calibrated planner cost model: predicted seconds = w · features.
class CalibratedCostModel final : public planner::CostModel {
 public:
  explicit CalibratedCostModel(const FeatureVector& weights)
      : weights_(weights) {}

  const char* name() const override { return "calibrated"; }

  double score(const gpusim::DeviceSpec& dev,
               const gpusim::KernelStats& stats,
               const planner::CandidateContext& ctx) const override {
    return dot(weights_, featurize(dev, stats, ctx));
  }

 private:
  FeatureVector weights_;
};

}  // namespace

FitResult fit_cost_model(const FeatureLog& log, const FitOptions& opt) {
  FCM_CHECK(opt.lambda >= 0.0, "fit: lambda must be >= 0");
  // Normal equations accumulated in log order — deterministic for a given
  // log byte-for-byte.
  double xtx[N][N] = {};
  double xty[N] = {};
  FitResult res;
  double abs_err_analytical = 0.0;
  for (const FeatureRecord& r : log.records) {
    if (r.source != "execute") continue;
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        xtx[i][j] += r.features[i] * r.features[j];
      }
      xty[i] += r.features[i] * r.executed_s;
    }
    abs_err_analytical += std::fabs(r.predicted_s - r.executed_s);
    ++res.records_used;
  }
  FCM_CHECK(res.records_used > 0,
            "fit: the log carries no \"execute\" records to fit on");

  // Scale-aware ridge: λ·diag(XᵀX) shrinks every coefficient by the same
  // relative amount whatever the feature's unit; the tiny absolute floor
  // keeps all-zero features (e.g. int_ops on an fp32-only log) solvable.
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < N; ++i) {
    xtx[i][i] += opt.lambda * xtx[i][i] + kEps;
  }
  res.weights = solve(xtx, xty);

  double abs_err_fit = 0.0;
  for (const FeatureRecord& r : log.records) {
    if (r.source != "execute") continue;
    abs_err_fit += std::fabs(dot(res.weights, r.features) - r.executed_s);
  }
  res.mae_analytical = abs_err_analytical / static_cast<double>(res.records_used);
  res.mae_calibrated = abs_err_fit / static_cast<double>(res.records_used);
  return res;
}

double mean_abs_error(const FeatureVector& weights, const FeatureLog& log) {
  double acc = 0.0;
  std::size_t n = 0;
  for (const FeatureRecord& r : log.records) {
    if (r.source != "execute") continue;
    acc += std::fabs(dot(weights, r.features) - r.executed_s);
    ++n;
  }
  FCM_CHECK(n > 0, "mean_abs_error: no \"execute\" records");
  return acc / static_cast<double>(n);
}

double mean_abs_error_analytical(const FeatureLog& log) {
  double acc = 0.0;
  std::size_t n = 0;
  for (const FeatureRecord& r : log.records) {
    if (r.source != "execute") continue;
    acc += std::fabs(r.predicted_s - r.executed_s);
    ++n;
  }
  FCM_CHECK(n > 0, "mean_abs_error_analytical: no \"execute\" records");
  return acc / static_cast<double>(n);
}

std::string serialize_cost_model(const FeatureVector& weights) {
  std::ostringstream os;
  os << "{\"fcm_cost_model\": " << kCostModelVersion
     << ", \"width\": " << kNumFeatures;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    os << ", \"" << feature_name(i)
       << "\": " << jsonl::fmt_double_rt(weights[i]);
  }
  os << "}\n";
  return os.str();
}

FeatureVector parse_cost_model(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool parsed = false;
  FeatureVector weights{};
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (parsed) {
      throw Error("cost model line " + std::to_string(line_no) +
                  ": trailing content after the model object");
    }
    jsonl::LineScanner scanner(line, line_no, "cost model");
    jsonl::FieldReader fields(scanner.object(), scanner);
    const std::uint64_t version = fields.u64("fcm_cost_model");
    if (version != static_cast<std::uint64_t>(kCostModelVersion)) {
      scanner.fail("unsupported cost-model version " +
                   std::to_string(version) + " (this build reads version " +
                   std::to_string(kCostModelVersion) + ")");
    }
    const std::uint64_t width = fields.u64("width");
    if (width != static_cast<std::uint64_t>(kNumFeatures)) {
      scanner.fail("feature width " + std::to_string(width) +
                   " does not match this build's schema (" +
                   std::to_string(kNumFeatures) + ")");
    }
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      weights[i] = fields.number(feature_name(i));
    }
    fields.check_no_unknown();
    parsed = true;
  }
  if (!parsed) {
    throw Error("cost model: missing model line ({\"fcm_cost_model\": 1, ...})");
  }
  return weights;
}

FeatureVector load_cost_model_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FCM_CHECK(is.good(), "cost model: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_cost_model(buf.str());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [" + path + "]");
  }
}

void save_cost_model_file(const FeatureVector& weights,
                          const std::string& path) {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  FCM_CHECK(os.good(), "cost model: cannot write '" + path + "'");
  os << serialize_cost_model(weights);
  FCM_CHECK(os.good(), "cost model: write to '" + path + "' failed");
}

std::shared_ptr<const planner::CostModel> make_calibrated_cost_model(
    const FeatureVector& weights) {
  return std::make_shared<const CalibratedCostModel>(weights);
}

}  // namespace fcm::autotune
