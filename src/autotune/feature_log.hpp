// Versioned on-disk dataset for the autotuning loop.
//
// One JSONL file: a header line declaring the schema version, feature width
// and record count, then one flat JSON object per record carrying the plan's
// feature vector plus the predicted and executed sim seconds. Same strict
// scanner discipline as src/workload/trace: unknown keys, duplicate keys,
// version/width mismatches and count mismatches are hard parse errors —
// a silently reinterpreted training set is worse than a rejected one.
//
// Records come from two seams:
//   * "plan"    — a cold plan-cache miss that ran the planner (executed = 0;
//                 plan_seconds is not a feature target, the record exists so
//                 datasets capture what the planner chose and predicted).
//   * "execute" — a request that actually ran; `executed` is the simulated
//                 seconds the batch took, the fitter's training target.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "autotune/features.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace fcm::autotune {

/// Bump on any change to the line format or the feature schema
/// (features.hpp); readers reject other versions.
inline constexpr int kFeatureLogVersion = 1;

/// One logged (features, predicted, executed) observation.
struct FeatureRecord {
  /// "plan" or "execute" (see file comment).
  std::string source;
  std::string model;
  std::string device;
  DType dtype = DType::kF32;
  int batch = 1;
  /// Model-predicted simulated seconds for the whole request (per-item
  /// roofline total × batch at execute time; the plan's roofline total for
  /// source == "plan").
  double predicted_s = 0.0;
  /// Simulated seconds the request actually took; 0 for source == "plan".
  double executed_s = 0.0;
  /// Whole-plan feature vector (featurize_plan), scaled by batch for
  /// executed requests so features stay additive in work.
  FeatureVector features{};
};

struct FeatureLog {
  std::vector<FeatureRecord> records;
};

std::string serialize_feature_log(const FeatureLog& log);
/// Strict parse; throws fcm::Error("feature log line N: ...") on any
/// deviation from the schema.
FeatureLog parse_feature_log(const std::string& text);

FeatureLog load_feature_log_file(const std::string& path);
void save_feature_log_file(const FeatureLog& log, const std::string& path);

/// Thread-safe in-process accumulator the serving seams append to; flushed
/// to disk once at tool exit (the log is an offline dataset, not a live
/// stream).
class FeatureCollector {
 public:
  void record(FeatureRecord r) EXCLUDES(mu_);
  FeatureLog snapshot() const EXCLUDES(mu_);
  std::size_t size() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<FeatureRecord> records_ GUARDED_BY(mu_);
};

}  // namespace fcm::autotune
