#include "autotune/feature_log.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "autotune/jsonl.hpp"
#include "common/error.hpp"

namespace fcm::autotune {

namespace {

using jsonl::FieldReader;
using jsonl::LineScanner;
using jsonl::fmt_double_rt;
using jsonl::json_string;

constexpr const char* kContext = "feature log";

DType dtype_from_log(const std::string& name, const LineScanner& scanner) {
  if (name == "fp32") return DType::kF32;
  if (name == "int8") return DType::kI8;
  scanner.fail("dtype must be \"fp32\" or \"int8\", got \"" + name + "\"");
}

std::string feature_key(std::size_t i) { return "f" + std::to_string(i); }

}  // namespace

std::string serialize_feature_log(const FeatureLog& log) {
  std::ostringstream os;
  os << "{\"fcm_features\": " << kFeatureLogVersion
     << ", \"width\": " << kNumFeatures
     << ", \"records\": " << log.records.size() << "}\n";
  for (const FeatureRecord& r : log.records) {
    FCM_CHECK(r.source == "plan" || r.source == "execute",
              "feature log: source must be \"plan\" or \"execute\", got \"" +
                  r.source + "\"");
    os << "{\"source\": " << json_string(r.source)
       << ", \"model\": " << json_string(r.model)
       << ", \"device\": " << json_string(r.device) << ", \"dtype\": \""
       << dtype_name(r.dtype) << "\", \"batch\": " << r.batch
       << ", \"predicted\": " << fmt_double_rt(r.predicted_s)
       << ", \"executed\": " << fmt_double_rt(r.executed_s);
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      os << ", \"" << feature_key(i)
         << "\": " << fmt_double_rt(r.features[i]);
    }
    os << "}\n";
  }
  return os.str();
}

FeatureLog parse_feature_log(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  FeatureLog log;
  bool have_header = false;
  std::uint64_t declared = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    LineScanner scanner(line, line_no, kContext);
    FieldReader fields(scanner.object(), scanner);
    if (!have_header) {
      const std::uint64_t version = fields.u64("fcm_features");
      if (version != static_cast<std::uint64_t>(kFeatureLogVersion)) {
        scanner.fail("unsupported feature-log version " +
                     std::to_string(version) + " (this build reads version " +
                     std::to_string(kFeatureLogVersion) + ")");
      }
      const std::uint64_t width = fields.u64("width");
      if (width != static_cast<std::uint64_t>(kNumFeatures)) {
        scanner.fail("feature width " + std::to_string(width) +
                     " does not match this build's schema (" +
                     std::to_string(kNumFeatures) + ")");
      }
      declared = fields.u64("records");
      fields.check_no_unknown();
      have_header = true;
      continue;
    }
    FeatureRecord r;
    r.source = fields.string("source");
    if (r.source != "plan" && r.source != "execute") {
      scanner.fail("source must be \"plan\" or \"execute\", got \"" +
                   r.source + "\"");
    }
    r.model = fields.string("model");
    r.device = fields.string("device");
    r.dtype = dtype_from_log(fields.string("dtype"), scanner);
    const double b = fields.number("batch");
    if (b < 1.0 || b != static_cast<double>(static_cast<int>(b))) {
      scanner.fail("batch must be an integer >= 1");
    }
    r.batch = static_cast<int>(b);
    r.predicted_s = fields.number("predicted");
    if (r.predicted_s < 0.0) scanner.fail("predicted must be >= 0");
    r.executed_s = fields.number("executed");
    if (r.executed_s < 0.0) scanner.fail("executed must be >= 0");
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      r.features[i] = fields.number(feature_key(i).c_str());
    }
    fields.check_no_unknown();
    log.records.push_back(std::move(r));
  }
  if (!have_header) {
    throw Error(
        "feature log: missing header line ({\"fcm_features\": 1, \"width\": "
        "..., \"records\": ...})");
  }
  if (log.records.size() != declared) {
    throw Error("feature log: header declares " + std::to_string(declared) +
                " records but the file carries " +
                std::to_string(log.records.size()) +
                " — truncated or concatenated log");
  }
  return log;
}

FeatureLog load_feature_log_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FCM_CHECK(is.good(), "feature log: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_feature_log(buf.str());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [" + path + "]");
  }
}

void save_feature_log_file(const FeatureLog& log, const std::string& path) {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  FCM_CHECK(os.good(), "feature log: cannot write '" + path + "'");
  os << serialize_feature_log(log);
  FCM_CHECK(os.good(), "feature log: write to '" + path + "' failed");
}

void FeatureCollector::record(FeatureRecord r) {
  MutexLock lk(mu_);
  records_.push_back(std::move(r));
}

FeatureLog FeatureCollector::snapshot() const {
  MutexLock lk(mu_);
  return FeatureLog{records_};
}

std::size_t FeatureCollector::size() const {
  MutexLock lk(mu_);
  return records_.size();
}

}  // namespace fcm::autotune
