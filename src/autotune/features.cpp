#include "autotune/features.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpusim/roofline.hpp"

namespace fcm::autotune {

namespace {

constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr const char* kFeatureNames[kNumFeatures] = {
    "launches",           "analytical_seconds", "compute_seconds",
    "memory_seconds",     "shared_seconds",     "load_gb",
    "store_gb",           "weight_gb",          "ifm_gb",
    "flops_tera",         "int_ops_tera",       "redundant_tera",
    "occupancy",          "l1_fraction",        "padding_fraction",
    "boundary_fraction",
};

}  // namespace

const char* feature_name(std::size_t i) {
  FCM_CHECK(i < kNumFeatures, "feature_name: index out of range");
  return kFeatureNames[i];
}

FeatureVector featurize(const gpusim::DeviceSpec& dev,
                        const gpusim::KernelStats& stats,
                        const planner::CandidateContext& ctx) {
  const gpusim::Timing t = gpusim::estimate_time(dev, stats);
  FeatureVector f{};
  f[kFLaunches] = static_cast<double>(stats.launches);
  f[kFAnalyticalSeconds] = t.total_s;
  f[kFComputeSeconds] = t.compute_s;
  f[kFMemorySeconds] = t.memory_s;
  f[kFSharedSeconds] = t.shared_s;
  f[kFLoadGB] = static_cast<double>(stats.global_load_bytes) / kGiga;
  f[kFStoreGB] = static_cast<double>(stats.global_store_bytes) / kGiga;
  f[kFWeightGB] = static_cast<double>(stats.weight_load_bytes) / kGiga;
  f[kFIfmGB] = static_cast<double>(stats.ifm_load_bytes) / kGiga;
  f[kFFlopsTera] = static_cast<double>(stats.flops) / kTera;
  f[kFIntOpsTera] = static_cast<double>(stats.int_ops) / kTera;
  f[kFRedundantTera] = static_cast<double>(stats.redundant_flops) / kTera;
  f[kFOccupancy] =
      dev.num_sms > 0
          ? std::min(1.0, static_cast<double>(stats.num_blocks) / dev.num_sms)
          : 0.0;
  f[kFL1Fraction] = ctx.l1_fraction;
  f[kFPaddingFraction] = ctx.padding_fraction;
  f[kFBoundaryFraction] = ctx.boundary_fraction;
  return f;
}

FeatureVector featurize_plan(const gpusim::DeviceSpec& dev,
                             const ModelGraph& model,
                             const planner::Plan& plan) {
  FeatureVector sum{};
  for (const planner::PlanStep& step : plan.steps) {
    const auto layer_at = [&](int i) -> const LayerSpec& {
      FCM_CHECK(i >= 0 && i < model.num_layers(),
                "featurize_plan: step references layer " + std::to_string(i) +
                    " outside model " + model.name);
      return model.layers[static_cast<std::size_t>(i)];
    };
    planner::CandidateContext ctx;
    if (!step.fused) {
      const LayerSpec& spec = layer_at(step.layer);
      // Mirror the planner's standard-conv FP32 fallback (lbl_choice_for).
      const DType layer_dt =
          spec.kind == ConvKind::kStandard ? DType::kF32 : plan.dtype;
      ctx = planner::lbl_context(dev, spec, step.lbl_tiling, layer_dt);
    } else if (step.layer3 >= 0) {
      ctx = planner::pwdwpw_context(dev, layer_at(step.layer),
                                    layer_at(step.layer2),
                                    layer_at(step.layer3), step.fcm_tiling,
                                    plan.dtype);
    } else {
      ctx = planner::fcm_context(dev, step.fcm_kind, layer_at(step.layer),
                                 layer_at(step.layer2), step.fcm_tiling,
                                 plan.dtype);
    }
    const FeatureVector f = featurize(dev, step.stats, ctx);
    for (std::size_t i = 0; i < kNumFeatures; ++i) sum[i] += f[i];
  }
  return sum;
}

}  // namespace fcm::autotune
