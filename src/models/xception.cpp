#include "models/model_zoo.hpp"

namespace fcm::models {

namespace {

/// Max-pool 3×3/2 modelled as a non-fusable strided depthwise pass (same
/// traffic shape; the planner never fuses across it). See model_zoo.hpp.
LayerSpec pool(const std::string& name, int c, int h) {
  LayerSpec p = LayerSpec::depthwise(name, c, h, h, 3, 2, ActKind::kNone);
  p.has_bn = false;
  p.allow_fusion = false;
  return p;
}

}  // namespace

// Xception (Chollet, 2017), adapted to a 224×224 "same"-padded geometry.
// Every separable conv is DW 3×3 followed by PW; the 1×1 strided shortcut
// convolutions of the entry/exit flows are parallel branches outside the
// main chain and are omitted (documented in DESIGN.md).
ModelGraph xception() {
  ModelGraph g;
  g.name = "XCe";
  int h = 224;

  g.layers.push_back(LayerSpec::standard("conv1", 3, h, h, 32, 3, 2));
  h = 112;
  g.layers.push_back(LayerSpec::standard("conv2", 32, h, h, 64, 3, 1));

  auto sep = [&g, &h](const std::string& name, int in_c, int out_c) {
    g.layers.push_back(LayerSpec::depthwise(name + "_dw", in_c, h, h, 3, 1));
    g.layers.push_back(
        LayerSpec::pointwise(name + "_pw", in_c, h, h, out_c));
  };

  // Entry flow.
  sep("e1a", 64, 128);
  sep("e1b", 128, 128);
  g.layers.push_back(pool("pool1", 128, h));
  h /= 2;  // 56
  sep("e2a", 128, 256);
  sep("e2b", 256, 256);
  g.layers.push_back(pool("pool2", 256, h));
  h /= 2;  // 28
  sep("e3a", 256, 728);
  sep("e3b", 728, 728);
  g.layers.push_back(pool("pool3", 728, h));
  h /= 2;  // 14

  // Middle flow: 8 blocks of 3 separable convs at 728 channels.
  for (int b = 0; b < 8; ++b) {
    for (int s = 0; s < 3; ++s) {
      sep("m" + std::to_string(b) + char('a' + s), 728, 728);
    }
  }

  // Exit flow.
  sep("x1a", 728, 728);
  sep("x1b", 728, 1024);
  g.layers.push_back(pool("pool4", 1024, h));
  h /= 2;  // 7
  sep("x2a", 1024, 1536);
  sep("x2b", 1536, 2048);

  g.validate();
  return g;
}

}  // namespace fcm::models
