#include "models/model_zoo.hpp"

namespace fcm::models {

// MobileNetV2 (Sandler et al., 2018), 224×224. Inverted residual bottleneck
// (t, c, n, s): PW expand (×t, ReLU6) → DW 3×3 (ReLU6) → PW project (linear).
// The first block has t=1 and skips the expansion. Residual skips connect
// equal-shape block boundaries (s == 1, in_c == out_c); the planner treats
// the producing layer's output as pinned to global memory.
ModelGraph mobilenet_v2() {
  ModelGraph g;
  g.name = "Mob_v2";
  int h = 224;

  g.layers.push_back(
      LayerSpec::standard("conv1", 3, h, h, 32, 3, 2, ActKind::kReLU6));
  h = 112;
  int c = 32;

  struct Stage {
    int t, c, n, s;
  };
  const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  int idx = 1;
  for (const auto& st : stages) {
    for (int n = 0; n < st.n; ++n) {
      const int stride = n == 0 ? st.s : 1;
      const bool residual = stride == 1 && c == st.c;
      const int block_in_layer = g.num_layers() - 1;
      const int mid = c * st.t;
      const std::string tag = std::to_string(idx);
      if (st.t != 1) {
        g.layers.push_back(LayerSpec::pointwise("pw_exp" + tag, c, h, h, mid,
                                                ActKind::kReLU6));
      }
      g.layers.push_back(
          LayerSpec::depthwise("dw" + tag, mid, h, h, 3, stride,
                               ActKind::kReLU6));
      if (stride == 2) h /= 2;
      g.layers.push_back(LayerSpec::pointwise("pw_proj" + tag, mid, h, h, st.c,
                                              ActKind::kNone));
      if (residual) {
        g.residual_edges.emplace_back(block_in_layer, g.num_layers() - 1);
      }
      c = st.c;
      ++idx;
    }
  }
  g.layers.push_back(
      LayerSpec::pointwise("pw_head", c, h, h, 1280, ActKind::kReLU6));
  g.validate();
  return g;
}

}  // namespace fcm::models
