#include "models/model_zoo.hpp"

namespace fcm::models {

// ProxylessNAS (Cai et al., 2019), GPU-searched variant, 224×224. MBConv
// blocks with heterogeneous expansion ratios and 3/5/7 depthwise kernels —
// the searched architectures favour large kernels on the GPU target.
ModelGraph proxyless_nas() {
  ModelGraph g;
  g.name = "Prox";
  int h = 224;

  g.layers.push_back(
      LayerSpec::standard("conv1", 3, h, h, 40, 3, 2, ActKind::kReLU6));
  h = 112;
  int c = 40;

  struct MbConv {
    int expand, k, stride, out_c;
  };
  // Representative of the published ProxylessNAS-GPU cell sequence.
  const MbConv blocks[] = {
      {1, 3, 1, 24},  {3, 5, 2, 32},  {3, 7, 1, 32},  {6, 7, 2, 56},
      {3, 5, 1, 56},  {6, 7, 2, 112}, {3, 5, 1, 112}, {6, 5, 1, 128},
      {3, 5, 1, 128}, {6, 7, 2, 256}, {6, 7, 1, 256}, {6, 5, 1, 432},
  };
  int idx = 1;
  for (const auto& b : blocks) {
    const bool residual = b.stride == 1 && c == b.out_c;
    const int block_in_layer = g.num_layers() - 1;
    const int mid = c * b.expand;
    const std::string tag = std::to_string(idx);
    if (b.expand != 1) {
      g.layers.push_back(
          LayerSpec::pointwise("pw_exp" + tag, c, h, h, mid, ActKind::kReLU6));
    }
    g.layers.push_back(
        LayerSpec::depthwise("dw" + tag, mid, h, h, b.k, b.stride,
                             ActKind::kReLU6));
    if (b.stride == 2) h /= 2;
    g.layers.push_back(LayerSpec::pointwise("pw_proj" + tag, mid, h, h,
                                            b.out_c, ActKind::kNone));
    if (residual) {
      g.residual_edges.emplace_back(block_in_layer, g.num_layers() - 1);
    }
    c = b.out_c;
    ++idx;
  }
  g.layers.push_back(
      LayerSpec::pointwise("pw_head", c, h, h, 1728, ActKind::kReLU6));
  g.validate();
  return g;
}

}  // namespace fcm::models
