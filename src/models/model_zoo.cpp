#include "models/model_zoo.hpp"

#include "common/error.hpp"

namespace fcm::models {

std::vector<ModelGraph> all_models() {
  return {mobilenet_v1(), mobilenet_v2(), xception(),
          proxyless_nas(), ceit(),        cmt()};
}

std::vector<ModelGraph> e2e_cnns() {
  return {mobilenet_v1(), mobilenet_v2(), xception(), proxyless_nas()};
}

ModelGraph model_by_name(const std::string& name) {
  if (name == "Mob_v1") return mobilenet_v1();
  if (name == "Mob_v2") return mobilenet_v2();
  if (name == "XCe") return xception();
  if (name == "Prox") return proxyless_nas();
  if (name == "CeiT") return ceit();
  if (name == "CMT") return cmt();
  if (name == "EffNet_B0") return efficientnet_b0();
  if (name == "Tiny") return tiny();
  throw Error("unknown model: " + name);
}

}  // namespace fcm::models
