// The fine-grained fusion cases of the paper's Table II.
//
// Each case is a consecutive DW/PW layer pair drawn from one of the six
// models — the pairs FusePlanner nominated for fusion in the paper's
// evaluation (F1–F12 for FP32, F1_8–F12_8 for INT8). The FCM type and the
// tile sizes are *not* part of the case definition: they are what FusePlanner
// chooses per GPU, which is exactly what the Table II bench reports.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "layers/layer_spec.hpp"

namespace fcm::models {

struct FusionCase {
  std::string id;    ///< "F1", "F4_8", ...
  std::string dnn;   ///< source model short name
  LayerSpec first;   ///< first conv of the pair (execution order)
  LayerSpec second;  ///< second conv; second.ifm == first.ofm
};

/// The twelve FP32 cases (paper Table II, top half).
std::vector<FusionCase> fp32_cases();

/// The twelve INT8 cases (paper Table II, bottom half).
std::vector<FusionCase> int8_cases();

/// fp32_cases() or int8_cases() by dtype.
std::vector<FusionCase> cases_for(DType dt);

}  // namespace fcm::models
