#include "models/model_zoo.hpp"

namespace fcm::models {

// EfficientNet-B0 (Tan & Le, 2019) conv stages — an extra evaluation model
// beyond the paper's six (the paper cites EfficientNet as a DW/PW-based
// design). MBConv blocks with 3×3/5×5 depthwise kernels; squeeze-and-
// excitation modules are channel-wise gating outside the conv chain and are
// omitted (their output feeds the projection PW, so the DW output is marked
// non-fusable to keep the boundary honest).
ModelGraph efficientnet_b0() {
  ModelGraph g;
  g.name = "EffNet_B0";
  int h = 224;

  g.layers.push_back(
      LayerSpec::standard("stem", 3, h, h, 32, 3, 2, ActKind::kReLU6));
  h = 112;
  int c = 32;

  struct Stage {
    int expand, out_c, blocks, stride, k;
  };
  const Stage stages[] = {{1, 16, 1, 1, 3},  {6, 24, 2, 2, 3},
                          {6, 40, 2, 2, 5},  {6, 80, 3, 2, 3},
                          {6, 112, 3, 1, 5}, {6, 192, 4, 2, 5},
                          {6, 320, 1, 1, 3}};
  int idx = 1;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      const int stride = b == 0 ? st.stride : 1;
      const bool residual = stride == 1 && c == st.out_c;
      const int block_in_layer = g.num_layers() - 1;
      const int mid = c * st.expand;
      const std::string tag = std::to_string(idx);
      if (st.expand != 1) {
        g.layers.push_back(
            LayerSpec::pointwise("pw_exp" + tag, c, h, h, mid, ActKind::kReLU6));
      }
      g.layers.push_back(LayerSpec::depthwise("dw" + tag, mid, h, h, st.k,
                                              stride, ActKind::kReLU6));
      // Squeeze-and-excitation gates the DW output before projection; the
      // intermediate must exist off-chip for the SE pooling path.
      g.layers.back().allow_fusion = false;
      if (stride == 2) h /= 2;
      g.layers.push_back(LayerSpec::pointwise("pw_proj" + tag, mid, h, h,
                                              st.out_c, ActKind::kNone));
      if (residual) {
        g.residual_edges.emplace_back(block_in_layer, g.num_layers() - 1);
      }
      c = st.out_c;
      ++idx;
    }
  }
  g.layers.push_back(
      LayerSpec::pointwise("pw_head", c, h, h, 1280, ActKind::kReLU6));
  g.validate();
  return g;
}

}  // namespace fcm::models
