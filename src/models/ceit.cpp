#include "models/model_zoo.hpp"

namespace fcm::models {

// CeiT-T (Yuan et al., 2021) convolutional stages. The image-to-token module
// is a standard conv; each of the 12 encoder blocks contributes its LeFF
// (locally-enhanced feed-forward) convolution triplet over the 14×14 token
// grid: PW expand (dim→4·dim, GELU) → DW 3×3 (GELU) → PW project (linear).
// Self-attention layers are not convolutions and are outside the planned
// chain (matching the paper's ViT evaluation scope).
ModelGraph ceit() {
  ModelGraph g;
  g.name = "CeiT";
  const int dim = 192;
  const int expand = 4;
  const int tokens = 14;

  // Image-to-tokens: conv 7×7/2 then the patch conv bringing 28×28 → 14×14.
  g.layers.push_back(
      LayerSpec::standard("i2t_conv", 3, 112, 112, 32, 7, 2, ActKind::kGELU));
  g.layers.push_back(
      LayerSpec::standard("i2t_patch", 32, 56, 56, dim, 4, 4, ActKind::kNone));

  for (int b = 0; b < 12; ++b) {
    const std::string tag = std::to_string(b);
    g.layers.push_back(LayerSpec::pointwise("leff_exp" + tag, dim, tokens,
                                            tokens, dim * expand,
                                            ActKind::kGELU));
    g.layers.push_back(LayerSpec::depthwise("leff_dw" + tag, dim * expand,
                                            tokens, tokens, 3, 1,
                                            ActKind::kGELU));
    g.layers.push_back(LayerSpec::pointwise("leff_proj" + tag, dim * expand,
                                            tokens, tokens, dim,
                                            ActKind::kNone));
    // Tokens re-enter attention between blocks: the projection output is
    // consumed outside the conv chain, so never fuse across block borders.
    g.layers.back().allow_fusion = false;
  }
  g.validate();
  return g;
}

}  // namespace fcm::models
