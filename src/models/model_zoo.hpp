// The six evaluation networks (paper §V-B): four compact CNNs and the
// convolutional stages of two convolutional ViTs.
//
// Each model is expressed as the chain of convolutional layers FusePlanner
// consumes (the paper imports the same information from TensorFlow DAGs).
// Non-convolutional glue is handled as follows:
//  * batch-norm + activation are attributes of each conv layer (fused
//    epilogues),
//  * Xception's max-pools are modelled as non-fusable strided depthwise
//    passes (same traffic/stride behaviour; planner never fuses them),
//  * ViT attention blocks are outside the conv chains and omitted — the
//    paper likewise evaluates only the DW/PW convolutions of CeiT/CMT,
//  * residual shortcuts are recorded as residual_edges so the planner knows
//    which intermediates must stay in global memory.
#pragma once

#include <string>
#include <vector>

#include "layers/model_graph.hpp"

namespace fcm::models {

/// MobileNetV1 (224×224, width 1.0): 13 depthwise-separable blocks.
ModelGraph mobilenet_v1();

/// MobileNetV2 (224×224): inverted residual bottlenecks.
ModelGraph mobilenet_v2();

/// Xception (224×224 variant): entry/middle/exit separable-conv flows.
ModelGraph xception();

/// ProxylessNAS (GPU variant, 224×224): MBConv blocks with 3/5/7 kernels.
ModelGraph proxyless_nas();

/// CeiT-T LeFF conv stages (image-to-token conv + 12 locally-enhanced
/// feed-forward modules at 14×14 tokens).
ModelGraph ceit();

/// CMT-S conv stages (stem + per-stage LPU/IRFFN convolutions).
ModelGraph cmt();

/// EfficientNet-B0 conv stages (extra model beyond the paper's six; SE
/// modules are fusion boundaries).
ModelGraph efficientnet_b0();

/// "Tiny": compact DW/PW-only stack (no standard-conv stem) used by serving
/// tests, CI smokes and load sweeps — the one zoo model the INT8 functional
/// path can execute end to end. Not part of all_models().
ModelGraph tiny();

/// All six paper models, paper order.
std::vector<ModelGraph> all_models();

/// The four CNNs used in the end-to-end TVM comparison (Fig. 10/11).
std::vector<ModelGraph> e2e_cnns();

/// Lookup by the short names used in the paper's figures
/// ("Mob_v1", "Mob_v2", "XCe", "Prox", "CeiT", "CMT").
ModelGraph model_by_name(const std::string& name);

}  // namespace fcm::models
