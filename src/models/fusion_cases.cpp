#include "models/fusion_cases.hpp"

#include "common/error.hpp"

namespace fcm::models {

namespace {

FusionCase pwdw(std::string id, std::string dnn, int c1, int c2, int h, int k,
                int stride, ActKind a1 = ActKind::kReLU6,
                ActKind a2 = ActKind::kReLU6) {
  FusionCase f;
  f.id = std::move(id);
  f.dnn = std::move(dnn);
  f.first = LayerSpec::pointwise(f.id + "_pw", c1, h, h, c2, a1);
  f.second = LayerSpec::depthwise(f.id + "_dw", c2, h, h, k, stride, a2);
  return f;
}

FusionCase dwpw(std::string id, std::string dnn, int c1, int c2, int h, int k,
                int stride, ActKind a1 = ActKind::kReLU6,
                ActKind a2 = ActKind::kReLU6) {
  FusionCase f;
  f.id = std::move(id);
  f.dnn = std::move(dnn);
  f.first = LayerSpec::depthwise(f.id + "_dw", c1, h, h, k, stride, a1);
  const int oh = f.first.out_h();
  f.second = LayerSpec::pointwise(f.id + "_pw", c1, oh, oh, c2, a2);
  return f;
}

FusionCase pwpw(std::string id, std::string dnn, int c1, int c2, int c3, int h,
                ActKind a1 = ActKind::kNone, ActKind a2 = ActKind::kReLU6) {
  FusionCase f;
  f.id = std::move(id);
  f.dnn = std::move(dnn);
  f.first = LayerSpec::pointwise(f.id + "_pw1", c1, h, h, c2, a1);
  f.second = LayerSpec::pointwise(f.id + "_pw2", c2, h, h, c3, a2);
  return f;
}

}  // namespace

// The concrete pairs below are the ones our FusePlanner nominates
// consistently across all three GPUs (the paper selected its Table II cases
// the same way); shapes are taken from the respective model graphs.

std::vector<FusionCase> fp32_cases() {
  const auto gelu = ActKind::kGELU;
  std::vector<FusionCase> cases;
  // MobileNetV1: expansion PW feeding the next block's (strided) DW.
  cases.push_back(pwdw("F1", "Mob_v1", 32, 64, 112, 3, 2));
  cases.push_back(pwdw("F2", "Mob_v1", 128, 128, 56, 3, 2));
  // MobileNetV2: DSC inside a bottleneck / expansion into the block DW.
  cases.push_back(dwpw("F3", "Mob_v2", 144, 24, 56, 3, 1, ActKind::kReLU6,
                       ActKind::kNone));
  cases.push_back(pwdw("F4", "Mob_v2", 24, 144, 56, 3, 1));
  // Xception entry-flow separable convs.
  cases.push_back(pwdw("F5", "XCe", 64, 128, 112, 3, 1));
  cases.push_back(pwdw("F6", "XCe", 128, 256, 56, 3, 1));
  // ProxylessNAS: large-kernel MBConv interiors.
  cases.push_back(dwpw("F7", "Prox", 72, 32, 56, 5, 2, ActKind::kReLU6,
                       ActKind::kNone));
  cases.push_back(pwdw("F8", "Prox", 24, 72, 56, 5, 2));
  // CeiT LeFF at two token resolutions.
  cases.push_back(pwdw("F9", "CeiT", 192, 768, 14, 3, 1, gelu, gelu));
  cases.push_back(pwdw("F10", "CeiT", 192, 768, 28, 3, 1, gelu, gelu));
  // CMT IRFFN stages.
  cases.push_back(pwdw("F11", "CMT", 256, 1024, 14, 3, 1, gelu, gelu));
  cases.push_back(pwdw("F12", "CMT", 128, 512, 28, 3, 1, gelu, gelu));
  return cases;
}

std::vector<FusionCase> int8_cases() {
  const auto gelu = ActKind::kGELU;
  std::vector<FusionCase> cases;
  cases.push_back(dwpw("F1_8", "Mob_v1", 32, 64, 112, 3, 1));
  cases.push_back(pwdw("F2_8", "Mob_v1", 256, 256, 28, 3, 2));
  cases.push_back(dwpw("F3_8", "Mob_v2", 144, 24, 56, 3, 1, ActKind::kReLU6,
                       ActKind::kNone));
  cases.push_back(pwpw("F4_8", "Mob_v2", 32, 16, 96, 112, ActKind::kNone,
                       ActKind::kReLU6));
  cases.push_back(dwpw("F5_8", "XCe", 64, 128, 112, 3, 1));
  cases.push_back(pwdw("F6_8", "XCe", 64, 128, 112, 3, 1));
  cases.push_back(dwpw("F7_8", "Prox", 72, 32, 56, 5, 2, ActKind::kReLU6,
                       ActKind::kNone));
  cases.push_back(pwpw("F8_8", "Prox", 40, 24, 72, 112, ActKind::kNone,
                       ActKind::kReLU6));
  cases.push_back(pwdw("F9_8", "CeiT", 192, 768, 14, 3, 1, gelu, gelu));
  cases.push_back(pwdw("F10_8", "CeiT", 192, 768, 28, 3, 1, gelu, gelu));
  cases.push_back(pwpw("F11_8", "CMT", 256, 64, 256, 56, ActKind::kNone,
                       gelu));
  cases.push_back(pwdw("F12_8", "CMT", 256, 1024, 14, 3, 1, gelu, gelu));
  return cases;
}

std::vector<FusionCase> cases_for(DType dt) {
  return dt == DType::kF32 ? fp32_cases() : int8_cases();
}

}  // namespace fcm::models
