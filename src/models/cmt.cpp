#include "models/model_zoo.hpp"

namespace fcm::models {

// CMT-S (Guo et al., 2022) convolutional stages. Stem: three 3×3 convs.
// Each stage s has a 2×2 patch-embedding conv and N_s blocks; every block
// contributes its LPU (local perception unit: residual DW 3×3) and IRFFN
// (inverted residual FFN: PW expand → DW 3×3 → PW project) convolutions.
// Attention layers sit between the LPU and the IRFFN, so fusion never
// crosses them (LPU outputs are marked non-fusable).
ModelGraph cmt() {
  ModelGraph g;
  g.name = "CMT";

  g.layers.push_back(
      LayerSpec::standard("stem1", 3, 224, 224, 16, 3, 2, ActKind::kGELU));
  g.layers.push_back(
      LayerSpec::standard("stem2", 16, 112, 112, 16, 3, 1, ActKind::kGELU));
  g.layers.push_back(
      LayerSpec::standard("stem3", 16, 112, 112, 16, 3, 1, ActKind::kGELU));

  struct Stage {
    int channels, blocks, h;
  };
  const Stage stages[] = {{64, 3, 56}, {128, 3, 28}, {256, 16, 14}, {512, 3, 7}};
  const int ffn_ratio = 4;

  int prev_c = 16;
  int prev_h = 112;
  for (int s = 0; s < 4; ++s) {
    const auto& st = stages[s];
    // Patch embedding: 2×2 stride-2 standard conv.
    {
      LayerSpec pe = LayerSpec::standard(
          "patch" + std::to_string(s), prev_c, prev_h, prev_h, st.channels, 2,
          2, ActKind::kNone);
      pe.pad = 0;  // exact 2× downsample
      g.layers.push_back(pe);
    }
    for (int b = 0; b < st.blocks; ++b) {
      const std::string tag = std::to_string(s) + "_" + std::to_string(b);
      // LPU: residual DW 3×3; output feeds attention → not fusable forward.
      {
        LayerSpec lpu = LayerSpec::depthwise("lpu" + tag, st.channels, st.h,
                                             st.h, 3, 1, ActKind::kNone);
        lpu.allow_fusion = false;
        g.layers.push_back(lpu);
      }
      // IRFFN triplet.
      g.layers.push_back(LayerSpec::pointwise(
          "ffn_exp" + tag, st.channels, st.h, st.h, st.channels * ffn_ratio,
          ActKind::kGELU));
      g.layers.push_back(LayerSpec::depthwise("ffn_dw" + tag,
                                              st.channels * ffn_ratio, st.h,
                                              st.h, 3, 1, ActKind::kGELU));
      g.layers.push_back(LayerSpec::pointwise("ffn_proj" + tag,
                                              st.channels * ffn_ratio, st.h,
                                              st.h, st.channels,
                                              ActKind::kNone));
      // Residual + attention boundary after the projection.
      g.layers.back().allow_fusion = false;
    }
    prev_c = st.channels;
    prev_h = st.h;
  }
  g.validate();
  return g;
}

}  // namespace fcm::models
