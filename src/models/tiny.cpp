#include "models/model_zoo.hpp"

namespace fcm::models {

// "Tiny" — a compact MobileNet-style depthwise-separable stack used by the
// serving tests, CI smokes and load-sweep benches. Unlike the paper models it
// has no standard-conv stem (a pointwise stem instead), so it is the one zoo
// entry the INT8 functional path (`ModelRunner::run_i8`) can execute end to
// end; it is also small enough that a full functional run is milliseconds,
// which keeps queue/backpressure tests and offered-load sweeps fast. Not part
// of `all_models()` — it reproduces no paper figure.
ModelGraph tiny() {
  ModelGraph g;
  g.name = "Tiny";
  const auto act = ActKind::kReLU6;

  g.layers.push_back(LayerSpec::pointwise("stem", 8, 32, 32, 16, act));
  g.layers.push_back(LayerSpec::pointwise("exp1", 16, 32, 32, 48, act));
  g.layers.push_back(LayerSpec::depthwise("dw1", 48, 32, 32, 3, 1, act));
  g.layers.push_back(
      LayerSpec::pointwise("proj1", 48, 32, 32, 16, ActKind::kNone));
  g.layers.push_back(LayerSpec::pointwise("exp2", 16, 32, 32, 48, act));
  g.layers.push_back(LayerSpec::depthwise("dw2", 48, 32, 32, 3, 2, act));
  g.layers.push_back(
      LayerSpec::pointwise("proj2", 48, 16, 16, 32, ActKind::kNone));
  g.layers.push_back(LayerSpec::pointwise("head", 32, 16, 16, 64, act));
  g.residual_edges.emplace_back(0, 3);  // stem output → proj1 output
  g.validate();
  return g;
}

}  // namespace fcm::models
