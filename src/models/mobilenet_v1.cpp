#include "models/model_zoo.hpp"

namespace fcm::models {

// MobileNetV1 (Howard et al., 2017), width multiplier 1.0, 224×224 input.
// conv1 is a standard 3×3 stride-2; each subsequent block is DW 3×3 (stride
// 1 or 2) followed by PW expansion. All layers use BN + ReLU6-style clipped
// activation (the paper's kernels fuse whatever norm/act follows).
ModelGraph mobilenet_v1() {
  ModelGraph g;
  g.name = "Mob_v1";
  int h = 224;
  auto act = ActKind::kReLU6;

  g.layers.push_back(LayerSpec::standard("conv1", 3, h, h, 32, 3, 2, act));
  h = 112;

  struct Block {
    int in_c, out_c, stride;
  };
  const Block blocks[] = {
      {32, 64, 1},    {64, 128, 2},   {128, 128, 1},  {128, 256, 2},
      {256, 256, 1},  {256, 512, 2},  {512, 512, 1},  {512, 512, 1},
      {512, 512, 1},  {512, 512, 1},  {512, 512, 1},  {512, 1024, 2},
      {1024, 1024, 1},
  };
  int idx = 1;
  for (const auto& b : blocks) {
    g.layers.push_back(LayerSpec::depthwise("dw" + std::to_string(idx), b.in_c,
                                            h, h, 3, b.stride, act));
    if (b.stride == 2) h /= 2;
    g.layers.push_back(LayerSpec::pointwise("pw" + std::to_string(idx), b.in_c,
                                            h, h, b.out_c, act));
    ++idx;
  }
  g.validate();
  return g;
}

}  // namespace fcm::models
