// Virtual-time trace replay: discrete-event simulation over the real
// serving stack.
//
// sim_replay drives a ServingCluster running on a ManualClock through a
// trace event-to-event: the driver thread submits each request when virtual
// time reaches its arrival instant, and between arrivals advances the clock
// directly to the next scheduled event — the next arrival, the next
// coalescing-window close, or the next completion-hold release
// (EngineOptions::virtual_hold) — skipping the idle gaps a real clock would
// sleep through. A 33-minute 1M-request trace replays in seconds of wall
// time while producing the same ServingReport, metrics and request spans a
// real-clock replay of the same schedule would.
//
// Correctness hinges on one invariant: the clock only moves while the
// cluster is settled — every queue worker parked (empty-queue wait, open
// coalescing window, or completion hold) and no dispatchable backlog
// awaiting an idle worker — so no in-flight timestamp can straddle a jump.
// The driver never calls sleep_until on the shared ManualClock (that would
// leap past intermediate wakeups); it steps set() through each wakeup in
// order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "serving/cluster.hpp"
#include "workload/trace.hpp"

namespace fcm::workload {

struct SimOptions {
  /// false (default): dry-run replay — no tensors, no kernels, per-request
  /// sim stats from the plan's roofline estimate; the fast path for large
  /// traces. true: full functional execution of every request (bit-exact
  /// outputs machinery, ~10^4x slower per request).
  bool functional = false;
};

/// How far the simulation outran the host.
struct SimSummary {
  /// Virtual span of the replay: first submission to full drain on the
  /// ManualClock, seconds.
  double virtual_s = 0.0;
  /// Host wall-clock time the replay took, seconds.
  double wall_s = 0.0;
  std::size_t requests = 0;
  /// The fast-forward ratio (virtual seconds simulated per wall second).
  double fast_forward_x() const {
    return wall_s > 0.0 ? virtual_s / wall_s : 0.0;
  }
  /// "1000000 requests: 2001.3 virtual s in 7.42 wall s (269.7x
  /// fast-forward)"
  std::string str() const;
};

/// Replay `trace` through `cluster` on `clock`, which MUST be the clock the
/// cluster was built on. Requirements checked up front (fcm::Error):
///   - the cluster runs on exactly this ManualClock;
///   - if EngineOptions::sim_dilation > 0, the engines must use
///     virtual_hold and the kReject admission policy — with kBlock a full
///     queue would park the driver thread while every worker waits for the
///     driver to advance time: deadlock by construction.
/// Fills *summary when non-null. The returned report is the cluster's
/// standard replay report over the trace (wall_s holds the VIRTUAL span).
serving::ServingReport sim_replay(serving::ServingCluster& cluster,
                                  const std::shared_ptr<ManualClock>& clock,
                                  const Trace& trace, const SimOptions& opt,
                                  SimSummary* summary);

}  // namespace fcm::workload
