#include "workload/sim_replay.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "models/model_zoo.hpp"

namespace fcm::workload {

std::string SimSummary::str() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu requests: %.1f virtual s in %.2f wall s (%.1fx "
                "fast-forward)",
                requests, virtual_s, wall_s, fast_forward_x());
  return buf;
}

serving::ServingReport sim_replay(serving::ServingCluster& cluster,
                                  const std::shared_ptr<ManualClock>& clock,
                                  const Trace& trace, const SimOptions& opt,
                                  SimSummary* summary) {
  FCM_CHECK(clock != nullptr, "sim_replay: clock must be non-null");
  FCM_CHECK(&cluster.clock() == clock.get(),
            "sim_replay: the cluster must run on the provided ManualClock "
            "(inject it via EngineOptions::clock)");
  const serving::EngineOptions& eopt = cluster.options().engine;
  FCM_CHECK(eopt.sim_dilation == 0.0 ||
                (eopt.virtual_hold &&
                 eopt.scheduler.policy == serving::AdmissionPolicy::kReject),
            "sim_replay: sim_dilation needs EngineOptions::virtual_hold and "
            "the kReject admission policy — virtual holds under kBlock park "
            "the driver on a full queue while every worker waits for the "
            "driver to advance time");
  validate_trace(trace);

  const std::vector<serving::InferenceEngine::Request> mix =
      trace_mix(trace, /*dry=*/!opt.functional);
  const std::vector<double> arrivals = trace_arrivals(trace);
  const std::size_t n = mix.size();

  // Functional replays need each model's input shape; dry replays carry no
  // tensors at all.
  std::unordered_map<std::string, FmShape> shapes;
  const FmShape no_shape{};
  if (opt.functional) {
    for (const auto& q : mix) {
      if (shapes.find(q.model) == shapes.end()) {
        shapes.emplace(
            q.model, models::model_by_name(q.model).layers.front().ifm_shape());
      }
    }
  }

  std::vector<std::future<serving::ServeResponse>> futures(n);
  std::vector<serving::ReplayOutcome> outcomes(n);
  std::vector<std::size_t> shard_of(n, 0);
  std::size_t submitted = 0, harvested = 0;
  auto harvest = [&](bool drain_all) {
    while (harvested < submitted) {
      auto& f = futures[harvested];
      if (!drain_all &&
          f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        break;
      }
      const serving::ServeResponse resp = f.get();
      outcomes[harvested] = serving::ReplayOutcome{
          resp.status, resp.latency_s, resp.sim_time_s, resp.gma_bytes};
      ++harvested;
    }
  };

  // One virtual-time step: with the cluster settled, move the clock to the
  // earliest pending wakeup (bounded by `target`). Returns false when
  // nothing could move yet (unsettled, or a due wakeup's waiter has not run
  // — re-nudged so it does) and the caller should yield and retry.
  auto step_clock = [&](double target) {
    if (!cluster.settled()) return false;
    const double now = clock->now_s();
    const double wakeup = cluster.next_wakeup_s();
    if (wakeup <= now) {
      // A waiter's deadline is due at (or before) the current instant but it
      // has not woken yet; set() re-notifies without moving time.
      clock->set(now);
      return false;
    }
    clock->set(std::min(wakeup, target));
    return true;
  };

  serving::ServingCluster::ReplayBracket bracket = cluster.begin_replay();
  const SteadyClock wall;
  const double wall0 = wall.now_s();
  const double t0 = clock->now_s();

  for (std::size_t i = 0; i < n; ++i) {
    serving::ServeRequest req = serving::materialise_request(
        mix[i], opt.functional ? shapes.at(mix[i].model) : no_shape);
    // Advance virtual time to this arrival, stepping through every earlier
    // worker wakeup in order (never past one — a window must close at its
    // own instant, not at the next arrival's).
    const double due = t0 + arrivals[i];
    while (clock->now_s() < due) {
      harvest(false);
      if (!step_clock(due)) std::this_thread::yield();
    }
    futures[i] = cluster.submit_routed(std::move(req), &shard_of[i]);
    submitted = i + 1;
    harvest(false);
  }

  // Drain: keep stepping until every response is harvested. A settled
  // cluster with no pending wakeup and outstanding futures is mid-handoff
  // (a worker between set_value and parking) — yield, don't advance.
  while (harvested < n) {
    harvest(false);
    if (harvested == n) break;
    if (!step_clock(std::numeric_limits<double>::infinity())) {
      std::this_thread::yield();
    }
  }

  const double virtual_s = clock->now_s() - t0;
  if (summary != nullptr) {
    summary->virtual_s = virtual_s;
    summary->wall_s = wall.now_s() - wall0;
    summary->requests = n;
  }
  return cluster.finish_replay(bracket, mix, outcomes, shard_of, virtual_s);
}

}  // namespace fcm::workload
