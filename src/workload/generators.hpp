// Seeded synthetic workload generators for the trace format.
//
// Five arrival-process families, each reproducible bit-for-bit from
// (spec, seed) — the same pair always yields a byte-identical serialized
// trace, on any platform (arrivals are drawn with explicit inversion /
// thinning over a mt19937_64, never through std:: distributions, whose
// output is implementation-defined):
//
//   poisson      homogeneous Poisson arrivals at rate_rps.
//   on-off       two-state MMPP: exponential ON/OFF sojourns; arrivals only
//                while ON, at a rate scaled so the long-run mean stays
//                rate_rps — bursty traffic with quiet gaps.
//   diurnal      rate modulated by a raised-cosine day curve with period
//                period_s, trough diurnal_min_x x rate, mean rate_rps.
//   flash-crowd  steady rate_rps with a flash_x x spike during
//                [flash_at_s, flash_at_s + flash_len_s) — the overload spike
//                admission-control experiments replay.
//   hot-skew     Poisson arrivals whose model choice follows a Zipf law over
//                spec.models (weight 1/rank^s) — a hot model dominating a
//                long tail, the plan-cache residency stressor.
//
// Every generator draws model choice, tenant tag and per-record input seeds
// from the same seeded stream, so two traces from the same spec differ only
// where their seeds do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/trace.hpp"

namespace fcm::workload {

enum class GeneratorKind {
  kPoisson,
  kOnOff,
  kDiurnal,
  kFlashCrowd,
  kHotSkew,
};

/// Canonical spelling ("poisson", "on-off", "diurnal", "flash-crowd",
/// "hot-skew") — also the generated trace's name.
std::string generator_name(GeneratorKind kind);
/// Inverse of generator_name; throws fcm::Error for unknown spellings.
GeneratorKind generator_from_name(const std::string& name);
/// "poisson|on-off|diurnal|flash-crowd|hot-skew" for CLI help/error text.
std::string generator_names_csv();

struct GeneratorSpec {
  GeneratorKind kind = GeneratorKind::kPoisson;
  /// Trace length in requests.
  std::size_t requests = 1000;
  /// Long-run mean arrival rate, requests/second (> 0).
  double rate_rps = 100.0;
  /// Candidate models (non-empty). Uniform choice unless zipf_s > 0.
  std::vector<std::string> models = {"Tiny"};
  /// > 0: Zipf exponent over `models` in listed order (rank 1 hottest).
  /// kHotSkew defaults a 0 to 1.2; other kinds keep 0 = uniform.
  double zipf_s = 0.0;
  DType dtype = DType::kF32;
  int batch = 1;
  /// Queueing deadline stamped on every record, seconds (0 = none).
  double deadline_s = 0.0;
  /// Non-empty: tenant tags drawn uniformly per record.
  std::vector<std::string> tenants;

  // kOnOff: mean exponential sojourns in each state, seconds.
  double on_mean_s = 0.5;
  double off_mean_s = 0.5;

  // kDiurnal: day-curve period and trough fraction (0 < min_x <= 1).
  double period_s = 60.0;
  double diurnal_min_x = 0.1;

  // kFlashCrowd: spike window and multiplier (>= 1).
  double flash_at_s = 5.0;
  double flash_len_s = 1.0;
  double flash_x = 10.0;
};

/// Generate `spec.requests` arrivals. Deterministic in (spec, seed); the
/// result always passes validate_trace. Throws fcm::Error on nonsensical
/// specs (empty model list, rate <= 0, ...).
Trace generate_trace(const GeneratorSpec& spec, std::uint64_t seed);

}  // namespace fcm::workload
