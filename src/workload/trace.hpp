// Versioned request-trace format for the workload simulator.
//
// A trace is a JSONL file: one header line followed by one flat JSON object
// per request, in arrival order. The header pins the format version and the
// generator provenance (name, seed, request count); each record carries the
// arrival instant in seconds from trace start, the model, dtype, batch size,
// an optional queueing deadline, an optional tenant tag and the input seed
// functional replays generate tensors from. Example:
//
//   {"fcm_trace": 1, "name": "poisson", "seed": 7, "requests": 2}
//   {"t": 0, "model": "Tiny", "dtype": "fp32", "batch": 1, "seed": 11}
//   {"t": 0.004, "model": "Tiny", "dtype": "int8", "batch": 2,
//    "deadline": 0.05, "tenant": "bulk", "seed": 12}
//
// Parsing is strict — unknown keys, duplicate keys, nested values, a wrong
// version, a request-count mismatch or non-monotone arrivals all throw
// fcm::Error with the offending line number — so a trace that loads is a
// trace the replay engines can trust. Serialisation renders doubles with
// %.17g, which round-trips every IEEE double exactly: serialize/parse is an
// identity, and byte-identical traces mean identical workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "serving/inference_engine.hpp"

namespace fcm::workload {

/// Format version written to (and required in) the header line.
inline constexpr int kTraceVersion = 1;

/// One request in a trace.
struct TraceRecord {
  /// Arrival instant, seconds from trace start (>= 0, non-decreasing).
  double t_s = 0.0;
  /// Zoo short name; validate_trace resolves it, so unknown models fail at
  /// load time rather than mid-replay.
  std::string model;
  DType dtype = DType::kF32;
  int batch = 1;
  /// Queueing deadline, seconds from enqueue (0 = none).
  double deadline_s = 0.0;
  /// Free-form tenant tag ("" = none) — multi-tenant workloads label their
  /// traffic classes here.
  std::string tenant;
  /// Input seed for functional replay (batch item j uses seed + j).
  std::uint64_t seed = 1;

  bool operator==(const TraceRecord&) const = default;
};

struct Trace {
  /// Workload name (the generator kind, or anything for curated traces).
  std::string name;
  /// Generator seed recorded for provenance (0 for hand-written traces).
  std::uint64_t seed = 0;
  std::vector<TraceRecord> requests;

  bool operator==(const Trace&) const = default;

  /// Last arrival instant (0 for an empty trace) — the virtual span an
  /// open-loop replay of this trace covers before draining.
  double duration_s() const {
    return requests.empty() ? 0.0 : requests.back().t_s;
  }
};

/// Render `trace` in the JSONL format above (header + one line per record,
/// trailing newline). Optional fields are omitted when at their defaults.
std::string serialize_trace(const Trace& trace);

/// Strict inverse of serialize_trace; throws fcm::Error naming the first
/// offending line. Also runs validate_trace, so the result is replayable.
Trace parse_trace(const std::string& text);

/// Structural validation shared by parse_trace and generators: arrivals
/// non-negative and non-decreasing, batches >= 1, deadlines >= 0, every
/// model resolvable in the zoo, header count consistent. Throws fcm::Error.
void validate_trace(const Trace& trace);

/// File convenience wrappers (fcm::Error on I/O failure).
Trace load_trace_file(const std::string& path);
void save_trace_file(const Trace& trace, const std::string& path);

/// Lower `trace` into the serving layer's replay inputs: one engine Request
/// per record (dry-run when `dry` — timing-only, no tensors) ...
std::vector<serving::InferenceEngine::Request> trace_mix(const Trace& trace,
                                                         bool dry);
/// ... plus the matching absolute arrival schedule for replay_scheduled.
std::vector<double> trace_arrivals(const Trace& trace);

}  // namespace fcm::workload
