#include "workload/trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "models/model_zoo.hpp"

namespace fcm::workload {

namespace {

/// Shortest decimal rendering of `v` that parses back bit-identically —
/// "0.004" stays "0.004", while values that genuinely need 17 digits get
/// them. Keeps traces human-readable without sacrificing exact round-trip.
std::string fmt_double_rt(double v) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// JSON string literal with the minimal escapes the strict parser accepts.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        FCM_CHECK(static_cast<unsigned char>(c) >= 0x20,
                  "trace: control character in string field");
        out += c;
    }
  }
  out += '"';
  return out;
}

/// One parsed value of a flat JSON object: a number (with its raw token, so
/// 64-bit seeds can be re-parsed without a double round-trip) or a string.
struct FieldValue {
  bool is_string = false;
  double num = 0.0;
  std::string raw;  // number token as written
  std::string str;  // unescaped string contents
};

using Fields = std::vector<std::pair<std::string, FieldValue>>;

/// Strict scanner for one flat JSON object line: string keys, number or
/// string values, no nesting, no duplicate keys, no trailing garbage.
class LineScanner {
 public:
  LineScanner(const std::string& line, std::size_t line_no)
      : s_(line), line_no_(line_no) {}

  Fields object() {
    Fields fields;
    skip_ws();
    expect('{', "object");
    skip_ws();
    if (!eat('}')) {
      for (;;) {
        skip_ws();
        std::string key = string_lit();
        for (const auto& [seen, unused] : fields) {
          if (seen == key) fail("duplicate key \"" + key + "\"");
        }
        skip_ws();
        expect(':', "':' after key \"" + key + "\"");
        skip_ws();
        fields.emplace_back(std::move(key), value());
        skip_ws();
        if (eat(',')) continue;
        expect('}', "',' or '}'");
        break;
      }
    }
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters after object");
    return fields;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("trace line " + std::to_string(line_no_) + ": " + msg);
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
  }
  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(char c, const std::string& what) {
    if (!eat(c)) fail("expected " + what);
  }

  std::string string_lit() {
    if (!eat('"')) fail("expected string");
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      }
      out += c;
    }
    if (!eat('"')) fail("unterminated string");
    return out;
  }

  FieldValue value() {
    FieldValue v;
    if (i_ < s_.size() && s_[i_] == '"') {
      v.is_string = true;
      v.str = string_lit();
      return v;
    }
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' ||
            s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected number or string value");
    v.raw = s_.substr(start, i_ - start);
    char* end = nullptr;
    v.num = std::strtod(v.raw.c_str(), &end);
    if (end != v.raw.c_str() + v.raw.size()) {
      fail("malformed number '" + v.raw + "'");
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::size_t line_no_;
};

/// Typed field accessors over one line's parsed object.
class FieldReader {
 public:
  FieldReader(Fields fields, const LineScanner& scanner)
      : fields_(std::move(fields)), scanner_(scanner) {}

  bool has(const char* key) const { return find(key) != nullptr; }

  double number(const char* key) {
    const FieldValue& v = require(key);
    if (v.is_string) scanner_.fail(std::string(key) + " must be a number");
    return v.num;
  }

  std::uint64_t u64(const char* key) {
    // Re-parse the raw token: a 64-bit seed must not round-trip through the
    // scanner's double (2^53 would silently truncate it).
    const FieldValue& v = require(key);
    if (v.is_string || v.raw.find_first_of(".eE-+") != std::string::npos) {
      scanner_.fail(std::string(key) + " must be a non-negative integer");
    }
    char* end = nullptr;
    const std::uint64_t x = std::strtoull(v.raw.c_str(), &end, 10);
    if (end != v.raw.c_str() + v.raw.size()) {
      scanner_.fail(std::string(key) + " must be a non-negative integer");
    }
    return x;
  }

  std::string string(const char* key) {
    const FieldValue& v = require(key);
    if (!v.is_string) scanner_.fail(std::string(key) + " must be a string");
    return v.str;
  }

  /// Every key must have been consumed by one of the accessors above.
  void check_no_unknown() const {
    for (const auto& [key, unused] : fields_) {
      bool used = false;
      for (const auto& u : used_) used = used || u == key;
      if (!used) scanner_.fail("unknown key \"" + key + "\"");
    }
  }

 private:
  const FieldValue* find(const char* key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const FieldValue& require(const char* key) {
    const FieldValue* v = find(key);
    if (v == nullptr) scanner_.fail(std::string("missing key \"") + key + "\"");
    used_.push_back(key);
    return *v;
  }

  Fields fields_;
  const LineScanner& scanner_;
  std::vector<std::string> used_;
};

DType dtype_from_trace(const std::string& name, const LineScanner& scanner) {
  if (name == "fp32") return DType::kF32;
  if (name == "int8") return DType::kI8;
  scanner.fail("dtype must be \"fp32\" or \"int8\", got \"" + name + "\"");
}

}  // namespace

std::string serialize_trace(const Trace& trace) {
  std::ostringstream os;
  os << "{\"fcm_trace\": " << kTraceVersion
     << ", \"name\": " << json_string(trace.name) << ", \"seed\": "
     << trace.seed << ", \"requests\": " << trace.requests.size() << "}\n";
  for (const TraceRecord& r : trace.requests) {
    os << "{\"t\": " << fmt_double_rt(r.t_s) << ", \"model\": "
       << json_string(r.model) << ", \"dtype\": \"" << dtype_name(r.dtype)
       << "\", \"batch\": " << r.batch;
    if (r.deadline_s != 0.0) {
      os << ", \"deadline\": " << fmt_double_rt(r.deadline_s);
    }
    if (!r.tenant.empty()) os << ", \"tenant\": " << json_string(r.tenant);
    os << ", \"seed\": " << r.seed << "}\n";
  }
  return os.str();
}

Trace parse_trace(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  Trace trace;
  bool have_header = false;
  std::uint64_t declared = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    LineScanner scanner(line, line_no);
    FieldReader fields(scanner.object(), scanner);
    if (!have_header) {
      const std::uint64_t version = fields.u64("fcm_trace");
      if (version != static_cast<std::uint64_t>(kTraceVersion)) {
        scanner.fail("unsupported trace version " + std::to_string(version) +
                     " (this build reads version " +
                     std::to_string(kTraceVersion) + ")");
      }
      trace.name = fields.string("name");
      trace.seed = fields.u64("seed");
      declared = fields.u64("requests");
      fields.check_no_unknown();
      have_header = true;
      continue;
    }
    TraceRecord r;
    r.t_s = fields.number("t");
    r.model = fields.string("model");
    r.dtype = dtype_from_trace(fields.string("dtype"), scanner);
    if (fields.has("batch")) {
      const double b = fields.number("batch");
      if (b < 1.0 || b != static_cast<double>(static_cast<int>(b))) {
        scanner.fail("batch must be an integer >= 1");
      }
      r.batch = static_cast<int>(b);
    }
    if (fields.has("deadline")) r.deadline_s = fields.number("deadline");
    if (fields.has("tenant")) r.tenant = fields.string("tenant");
    if (fields.has("seed")) r.seed = fields.u64("seed");
    fields.check_no_unknown();
    trace.requests.push_back(std::move(r));
  }
  if (!have_header) {
    throw Error(
        "trace: missing header line ({\"fcm_trace\": 1, \"name\": ..., "
        "\"seed\": ..., \"requests\": ...})");
  }
  if (trace.requests.size() != declared) {
    throw Error("trace: header declares " + std::to_string(declared) +
                " requests but the file carries " +
                std::to_string(trace.requests.size()) +
                " — truncated or concatenated trace");
  }
  validate_trace(trace);
  return trace;
}

void validate_trace(const Trace& trace) {
  std::unordered_set<std::string> known;
  double prev_t = 0.0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRecord& r = trace.requests[i];
    const std::string at = "trace: record " + std::to_string(i) + ": ";
    FCM_CHECK(r.t_s >= 0.0, at + "arrival must be >= 0");
    FCM_CHECK(r.t_s >= prev_t,
              at + "arrivals must be non-decreasing (" +
                  fmt_double_rt(r.t_s) + " after " + fmt_double_rt(prev_t) +
                  ")");
    prev_t = r.t_s;
    FCM_CHECK(r.batch >= 1, at + "batch must be >= 1");
    FCM_CHECK(r.deadline_s >= 0.0, at + "deadline must be >= 0");
    if (known.insert(r.model).second) {
      try {
        (void)models::model_by_name(r.model);
      } catch (const Error& e) {
        throw Error(at + e.what());
      }
    }
  }
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FCM_CHECK(is.good(), "trace: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_trace(buf.str());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [" + path + "]");
  }
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  FCM_CHECK(os.good(), "trace: cannot write '" + path + "'");
  os << serialize_trace(trace);
  FCM_CHECK(os.good(), "trace: write to '" + path + "' failed");
}

std::vector<serving::InferenceEngine::Request> trace_mix(const Trace& trace,
                                                         bool dry) {
  std::vector<serving::InferenceEngine::Request> mix;
  mix.reserve(trace.requests.size());
  for (const TraceRecord& r : trace.requests) {
    serving::InferenceEngine::Request q;
    q.model = r.model;
    q.input_seed = r.seed;
    q.dtype = r.dtype;
    q.batch = r.batch;
    q.deadline_s = r.deadline_s;
    q.dry = dry;
    mix.push_back(std::move(q));
  }
  return mix;
}

std::vector<double> trace_arrivals(const Trace& trace) {
  std::vector<double> arrivals;
  arrivals.reserve(trace.requests.size());
  for (const TraceRecord& r : trace.requests) arrivals.push_back(r.t_s);
  return arrivals;
}

}  // namespace fcm::workload
