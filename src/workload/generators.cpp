#include "workload/generators.hpp"

#include <cmath>
#include <random>

#include "common/error.hpp"

namespace fcm::workload {

std::string generator_name(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kPoisson: return "poisson";
    case GeneratorKind::kOnOff: return "on-off";
    case GeneratorKind::kDiurnal: return "diurnal";
    case GeneratorKind::kFlashCrowd: return "flash-crowd";
    case GeneratorKind::kHotSkew: return "hot-skew";
  }
  throw Error("generator_name: unknown kind");
}

GeneratorKind generator_from_name(const std::string& name) {
  if (name == "poisson") return GeneratorKind::kPoisson;
  if (name == "on-off") return GeneratorKind::kOnOff;
  if (name == "diurnal") return GeneratorKind::kDiurnal;
  if (name == "flash-crowd") return GeneratorKind::kFlashCrowd;
  if (name == "hot-skew") return GeneratorKind::kHotSkew;
  throw Error("unknown generator '" + name + "' (expected " +
              generator_names_csv() + ")");
}

std::string generator_names_csv() {
  return "poisson|on-off|diurnal|flash-crowd|hot-skew";
}

namespace {

/// Uniform in [0, 1) from the top 53 bits — the standard exact dyadic
/// construction, identical on every platform.
double u01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Exponential with rate `lambda` by inversion. -log1p(-u) is exact near
/// u = 0 and never -inf (u < 1 by construction).
double exp_draw(std::mt19937_64& rng, double lambda) {
  return -std::log1p(-u01(rng)) / lambda;
}

/// splitmix64 — the per-record input-seed stream, decoupled from the
/// arrival-process draws so adding a draw to one generator never perturbs
/// the seeds every generator stamps.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Inverse-CDF sampler over Zipf weights 1/rank^s (uniform when s == 0).
class ModelPicker {
 public:
  ModelPicker(const std::vector<std::string>& models, double s) {
    cdf_.reserve(models.size());
    double total = 0.0;
    for (std::size_t i = 0; i < models.size(); ++i) {
      total += s > 0.0 ? 1.0 / std::pow(static_cast<double>(i + 1), s) : 1.0;
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t pick(std::mt19937_64& rng) const {
    const double u = u01(rng);
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u < cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

/// Arrivals of an inhomogeneous Poisson process with rate `rate_of(t)`
/// bounded by `rate_max`, by thinning: draw candidates at rate_max, accept
/// each with probability rate_of(t)/rate_max.
template <typename RateFn>
std::vector<double> thinned_arrivals(std::size_t n, double rate_max,
                                     RateFn rate_of, std::mt19937_64& rng) {
  std::vector<double> out;
  out.reserve(n);
  double t = 0.0;
  while (out.size() < n) {
    t += exp_draw(rng, rate_max);
    if (u01(rng) * rate_max < rate_of(t)) out.push_back(t);
  }
  return out;
}

std::vector<double> arrivals_for(const GeneratorSpec& spec,
                                 std::mt19937_64& rng) {
  const std::size_t n = spec.requests;
  switch (spec.kind) {
    case GeneratorKind::kPoisson:
    case GeneratorKind::kHotSkew: {
      std::vector<double> out;
      out.reserve(n);
      double t = 0.0;
      while (out.size() < n) {
        t += exp_draw(rng, spec.rate_rps);
        out.push_back(t);
      }
      return out;
    }
    case GeneratorKind::kOnOff: {
      FCM_CHECK(spec.on_mean_s > 0.0 && spec.off_mean_s > 0.0,
                "on-off generator: sojourn means must be > 0");
      // Arrivals only while ON, at a rate scaled by the ON duty cycle so
      // the long-run mean stays rate_rps.
      const double rate_on =
          spec.rate_rps * (spec.on_mean_s + spec.off_mean_s) / spec.on_mean_s;
      std::vector<double> out;
      out.reserve(n);
      double t = 0.0;
      double state_end = exp_draw(rng, 1.0 / spec.on_mean_s);
      bool on = true;
      while (out.size() < n) {
        if (!on) {
          t = state_end;
          state_end += exp_draw(rng, 1.0 / spec.on_mean_s);
          on = true;
          continue;
        }
        const double dt = exp_draw(rng, rate_on);
        if (t + dt >= state_end) {
          t = state_end;
          state_end += exp_draw(rng, 1.0 / spec.off_mean_s);
          on = false;
          continue;
        }
        t += dt;
        out.push_back(t);
      }
      return out;
    }
    case GeneratorKind::kDiurnal: {
      FCM_CHECK(spec.period_s > 0.0, "diurnal generator: period must be > 0");
      FCM_CHECK(spec.diurnal_min_x > 0.0 && spec.diurnal_min_x <= 1.0,
                "diurnal generator: trough fraction must be in (0, 1]");
      // Raised cosine through [min_x, 2 - min_x] x rate; time-average is
      // exactly rate_rps over a full period.
      const double min_x = spec.diurnal_min_x;
      const double rate_max = spec.rate_rps * (2.0 - min_x);
      const double omega = 2.0 * 3.14159265358979323846 / spec.period_s;
      return thinned_arrivals(
          n, rate_max,
          [&](double t) {
            return spec.rate_rps *
                   (min_x + (1.0 - min_x) * (1.0 - std::cos(omega * t)));
          },
          rng);
    }
    case GeneratorKind::kFlashCrowd: {
      FCM_CHECK(spec.flash_x >= 1.0 && spec.flash_len_s > 0.0,
                "flash-crowd generator: needs flash_x >= 1 and a positive "
                "spike length");
      const double rate_max = spec.rate_rps * spec.flash_x;
      return thinned_arrivals(
          n, rate_max,
          [&](double t) {
            const bool in_flash = t >= spec.flash_at_s &&
                                  t < spec.flash_at_s + spec.flash_len_s;
            return spec.rate_rps * (in_flash ? spec.flash_x : 1.0);
          },
          rng);
    }
  }
  throw Error("generate_trace: unknown generator kind");
}

}  // namespace

Trace generate_trace(const GeneratorSpec& spec, std::uint64_t seed) {
  FCM_CHECK(spec.requests >= 1, "generate_trace: requests must be >= 1");
  FCM_CHECK(spec.rate_rps > 0.0, "generate_trace: rate must be > 0");
  FCM_CHECK(!spec.models.empty(), "generate_trace: model list must be "
                                  "non-empty");
  FCM_CHECK(spec.batch >= 1, "generate_trace: batch must be >= 1");
  FCM_CHECK(spec.deadline_s >= 0.0, "generate_trace: deadline must be >= 0");
  FCM_CHECK(spec.zipf_s >= 0.0, "generate_trace: zipf exponent must be >= 0");

  std::mt19937_64 rng(seed);
  std::uint64_t seed_stream = seed ^ 0xfc0de5ull;  // per-record input seeds

  double zipf_s = spec.zipf_s;
  if (spec.kind == GeneratorKind::kHotSkew && zipf_s == 0.0) zipf_s = 1.2;
  const ModelPicker picker(spec.models, zipf_s);

  Trace trace;
  trace.name = generator_name(spec.kind);
  trace.seed = seed;
  const std::vector<double> arrivals = arrivals_for(spec, rng);
  trace.requests.reserve(arrivals.size());
  for (const double t : arrivals) {
    TraceRecord r;
    r.t_s = t;
    r.model = spec.models[picker.pick(rng)];
    r.dtype = spec.dtype;
    r.batch = spec.batch;
    r.deadline_s = spec.deadline_s;
    if (!spec.tenants.empty()) {
      r.tenant = spec.tenants[static_cast<std::size_t>(
          u01(rng) * static_cast<double>(spec.tenants.size()))];
    }
    r.seed = splitmix64(seed_stream);
    trace.requests.push_back(std::move(r));
  }
  validate_trace(trace);
  return trace;
}

}  // namespace fcm::workload
